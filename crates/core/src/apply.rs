//! The `Apply` transformation (paper, §5): compiling constraints into the
//! control flow graph.
//!
//! `Apply(σ, T)` rewrites a unique-event concurrent-Horn goal `T` into a
//! concurrent-Horn goal whose executions are exactly the executions of `T`
//! that satisfy the constraint `σ` — i.e. `Apply(σ, T) ≡ T ∧ σ` with the
//! hard-to-execute `∧` eliminated (Propositions 5.2, 5.4, 5.6). It is a
//! *compilation* step: after it (and [`excise`](mod@crate::excise)), scheduling
//! needs no run-time constraint checking.
//!
//! Three layers, following Definitions 5.1, 5.3, and 5.5:
//!
//! 1. **Primitive constraints** `∇α` / `¬∇α` rewrite structurally. For
//!    `∇α`, serial and concurrent conjunctions distribute into a
//!    disjunction over the position where `α` occurs; subgoals not
//!    mentioning `α` collapse to `¬path`, which the smart constructors
//!    absorb — this pruning is what keeps the output `O(|T|)` per
//!    primitive and is also the feature that "eliminates the parts of the
//!    control graph inconsistent with the constraints".
//! 2. **Order constraints** `∇α ⊗ ∇β` compile via `sync(α<β, ·)`: every
//!    occurrence of `α` becomes `α ⊗ send(ξ)` and every occurrence of `β`
//!    becomes `receive(ξ) ⊗ β` for a fresh channel `ξ`, after both
//!    existence compilations.
//! 3. **General constraints** in the normal form of Corollary 3.5 compile
//!    by `Apply(C₁ ∨ C₂, T) = Apply(C₁, T) ∨ Apply(C₂, T)` and sequential
//!    composition over `∧` — yielding the `O(d^N · |T|)` size bound of
//!    Theorem 5.11.

use crate::constraints::{Basic, Conjunct, Constraint, NormalForm};
use crate::goal::{conc, isolated, or, seq, Channel, Goal};
use crate::symbol::Symbol;

/// Allocator of fresh synchronization channels.
///
/// Each order-constraint compilation must use a channel "new" with respect
/// to the goal (Definition 5.3); the compiler threads one allocator through
/// a whole compilation so channels never collide.
#[derive(Clone, Debug, Default)]
pub struct ChannelAlloc {
    next: u32,
}

impl ChannelAlloc {
    /// A fresh allocator starting at channel 0.
    pub fn new() -> ChannelAlloc {
        ChannelAlloc::default()
    }

    /// An allocator whose channels are fresh with respect to `goal` —
    /// needed when the input goal already contains channels (e.g. incremental
    /// re-compilation of an already-compiled workflow).
    pub fn fresh_for(goal: &Goal) -> ChannelAlloc {
        let next = goal.channels().iter().map(|c| c.0 + 1).max().unwrap_or(0);
        ChannelAlloc { next }
    }

    /// Allocates the next fresh channel.
    pub fn fresh(&mut self) -> Channel {
        let c = Channel(self.next);
        self.next += 1;
        c
    }
}

/// `Apply(∇α, T)` — Definition 5.1, positive primitive.
///
/// The result's executions are the executions of `T` in which `α` occurs.
/// Returns `¬path` when no execution of `T` contains `α`.
pub fn apply_must(alpha: Symbol, goal: &Goal) -> Goal {
    match goal {
        Goal::Atom(a) => {
            if a.as_event() == Some(alpha) {
                goal.clone()
            } else {
                Goal::NoPath
            }
        }
        // Apply(∇α, T ⊗ K) = (Apply(∇α,T) ⊗ K) ∨ (T ⊗ Apply(∇α,K)),
        // generalized n-ary: a disjunct per child position. Children not
        // mentioning α yield ¬path and their disjunct is absorbed.
        Goal::Seq(gs) => or((0..gs.len())
            .map(|i| {
                let rewritten = apply_must(alpha, &gs[i]);
                if rewritten.is_nopath() {
                    return Goal::NoPath;
                }
                let mut children = Vec::with_capacity(gs.len());
                children.extend(gs[..i].iter().cloned());
                children.push(rewritten);
                children.extend(gs[i + 1..].iter().cloned());
                seq(children)
            })
            .collect()),
        Goal::Conc(gs) => or((0..gs.len())
            .map(|i| {
                let rewritten = apply_must(alpha, &gs[i]);
                if rewritten.is_nopath() {
                    return Goal::NoPath;
                }
                let mut children = Vec::with_capacity(gs.len());
                children.extend(gs[..i].iter().cloned());
                children.push(rewritten);
                children.extend(gs[i + 1..].iter().cloned());
                conc(children)
            })
            .collect()),
        Goal::Or(gs) => or(gs.iter().map(|g| apply_must(alpha, g)).collect()),
        Goal::Isolated(g) => isolated(apply_must(alpha, g)),
        // Events inside ◇ do not occur on the final execution path (◇
        // consumes no path), so they cannot witness ∇α.
        Goal::Possible(_) => Goal::NoPath,
        Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => Goal::NoPath,
    }
}

/// `Apply(¬∇α, T)` — Definition 5.1, negative primitive.
///
/// The result's executions are the executions of `T` in which `α` does not
/// occur: every occurrence of `α` is replaced by `¬path`, which prunes the
/// containing conjunction and drops the containing `∨`-branch.
pub fn apply_must_not(alpha: Symbol, goal: &Goal) -> Goal {
    match goal {
        Goal::Atom(a) => {
            if a.as_event() == Some(alpha) {
                Goal::NoPath
            } else {
                goal.clone()
            }
        }
        Goal::Seq(gs) => seq(gs.iter().map(|g| apply_must_not(alpha, g)).collect()),
        Goal::Conc(gs) => conc(gs.iter().map(|g| apply_must_not(alpha, g)).collect()),
        Goal::Or(gs) => or(gs.iter().map(|g| apply_must_not(alpha, g)).collect()),
        Goal::Isolated(g) => isolated(apply_must_not(alpha, g)),
        // Occurrences inside ◇ are hypothetical — they do not appear on the
        // execution path, so they cannot violate ¬∇α.
        Goal::Possible(_) => goal.clone(),
        Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => goal.clone(),
    }
}

/// The `sync(α<β, T)` rewriting of Definition 5.3: every occurrence of
/// event `α` becomes `α ⊗ send(ξ)` and every occurrence of `β` becomes
/// `receive(ξ) ⊗ β`.
pub fn sync(alpha: Symbol, beta: Symbol, xi: Channel, goal: &Goal) -> Goal {
    match goal {
        Goal::Atom(a) => {
            if a.as_event() == Some(alpha) {
                seq(vec![goal.clone(), Goal::Send(xi)])
            } else if a.as_event() == Some(beta) {
                seq(vec![Goal::Receive(xi), goal.clone()])
            } else {
                goal.clone()
            }
        }
        Goal::Seq(gs) => seq(gs.iter().map(|g| sync(alpha, beta, xi, g)).collect()),
        Goal::Conc(gs) => conc(gs.iter().map(|g| sync(alpha, beta, xi, g)).collect()),
        Goal::Or(gs) => or(gs.iter().map(|g| sync(alpha, beta, xi, g)).collect()),
        Goal::Isolated(g) => isolated(sync(alpha, beta, xi, g)),
        // Hypothetical occurrences inside ◇ never execute, so they take no
        // part in synchronization.
        Goal::Possible(_) => goal.clone(),
        Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => goal.clone(),
    }
}

/// `Apply(∇α ⊗ ∇β, T)` — Definition 5.3:
/// `sync(α<β, Apply(∇α, Apply(∇β, T)))` with a fresh channel.
pub fn apply_order(alpha: Symbol, beta: Symbol, goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
    if alpha == beta {
        // ∇α ⊗ ∇α requires two occurrences of α: unsatisfiable on
        // unique-event goals.
        return Goal::NoPath;
    }
    let inner = apply_must(alpha, &apply_must(beta, goal));
    if inner.is_nopath() {
        return Goal::NoPath;
    }
    let xi = channels.fresh();
    sync(alpha, beta, xi, &inner)
}

/// `Apply` of a single basic constraint.
pub fn apply_basic(basic: &Basic, goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
    match *basic {
        Basic::Must(e) => apply_must(e, goal),
        Basic::MustNot(e) => apply_must_not(e, goal),
        Basic::Order(a, b) => apply_order(a, b, goal, channels),
    }
}

/// `Apply` of a conjunction of basics: sequential composition — each
/// application preserves the unique-event property, so the next may be
/// applied to its output (Definition 5.5).
pub fn apply_conjunct(conj: &Conjunct, goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
    let mut current = goal.clone();
    for basic in conj {
        if current.is_nopath() {
            return Goal::NoPath;
        }
        current = apply_basic(basic, &current, channels);
    }
    current
}

/// `Apply` of one normalized constraint:
/// `Apply(C₁ ∨ C₂, T) = Apply(C₁, T) ∨ Apply(C₂, T)`.
pub fn apply_normal_form(nf: &NormalForm, goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
    or(nf.disjuncts.iter().map(|conj| apply_conjunct(conj, goal, channels)).collect())
}

/// `Apply(C, G)` for a whole constraint set `C = δ₁ ∧ … ∧ δₙ`
/// (Definition 5.5): constraints are normalized (Corollary 3.5) and
/// compiled in sequence. The output size is `O(d^N · |G|)` in the worst
/// case (Theorem 5.11).
///
/// The result may still contain *knots* — cyclic send/receive waits — and
/// must be passed through [`excise`](crate::excise::excise) before it is
/// used as an executable specification.
pub fn apply_all(constraints: &[Constraint], goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
    let mut current = goal.clone();
    for c in constraints {
        if current.is_nopath() {
            return Goal::NoPath;
        }
        let nf = c.normalize();
        current = apply_normal_form(&nf, &current, channels);
    }
    current
}

/// Convenience wrapper: compiles `constraints` into `goal` with channels
/// fresh for the goal.
pub fn apply(constraints: &[Constraint], goal: &Goal) -> Goal {
    let mut channels = ChannelAlloc::fresh_for(goal);
    apply_all(constraints, goal, &mut channels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{event_traces, satisfies};
    use crate::symbol::sym;
    use std::collections::BTreeSet;

    const BUDGET: usize = 200_000;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    /// The oracle check of Propositions 5.2/5.4/5.6:
    /// traces(Apply(C, G)) == { t ∈ traces(G) | t ⊨ C }.
    fn assert_apply_equiv(constraints: &[Constraint], goal: &Goal) {
        let compiled = apply(constraints, goal);
        let got = event_traces(&compiled, BUDGET).unwrap();
        let want: BTreeSet<_> = event_traces(goal, BUDGET)
            .unwrap()
            .into_iter()
            .filter(|t| constraints.iter().all(|c| satisfies(t, c)))
            .collect();
        assert_eq!(got, want, "constraints {constraints:?} on goal {goal}");
    }

    #[test]
    fn paper_example_after_definition_5_1() {
        // Apply(∇β, γ ⊗ (α ∨ β ∨ η) ⊗ δ) = γ ⊗ β ⊗ δ
        let t = seq(vec![g("gamma"), or(vec![g("alpha"), g("beta"), g("eta")]), g("delta")]);
        let result = apply_must(sym("beta"), &t);
        assert_eq!(result, seq(vec![g("gamma"), g("beta"), g("delta")]));
    }

    #[test]
    fn paper_example_negative_primitive() {
        // Apply(¬∇β, γ ⊗ (α ∨ β ∨ η) ⊗ δ) = γ ⊗ (α ∨ η) ⊗ δ
        let t = seq(vec![g("gamma"), or(vec![g("alpha"), g("beta"), g("eta")]), g("delta")]);
        let result = apply_must_not(sym("beta"), &t);
        assert_eq!(result, seq(vec![g("gamma"), or(vec![g("alpha"), g("eta")]), g("delta")]));
    }

    #[test]
    fn must_of_absent_event_is_nopath() {
        let t = seq(vec![g("a"), g("b")]);
        assert_eq!(apply_must(sym("zzz"), &t), Goal::NoPath);
    }

    #[test]
    fn must_not_of_absent_event_is_identity() {
        let t = seq(vec![g("a"), or(vec![g("b"), g("c")])]);
        assert_eq!(apply_must_not(sym("zzz"), &t), t);
    }

    #[test]
    fn must_not_prunes_whole_seq_branch() {
        // Removing b kills the whole b-branch of the Or.
        let t = or(vec![seq(vec![g("a"), g("b")]), g("c")]);
        assert_eq!(apply_must_not(sym("b"), &t), g("c"));
    }

    #[test]
    fn paper_example_4_order_on_disjunction() {
        // Apply(∇α ⊗ ∇β, γ ∨ (β ⊗ α)) = receive(ξ) ⊗ β ⊗ α ⊗ send(ξ)
        // (a knot — detected later by Excise).
        let t = or(vec![g("gamma"), seq(vec![g("beta"), g("alpha")])]);
        let mut ch = ChannelAlloc::new();
        let result = apply_order(sym("alpha"), sym("beta"), &t, &mut ch);
        let xi = Channel(0);
        assert_eq!(
            result,
            seq(vec![Goal::Receive(xi), g("beta"), g("alpha"), Goal::Send(xi)])
        );
    }

    #[test]
    fn paper_example_4_order_on_concurrence() {
        // Apply(∇α ⊗ ∇β, α | β | ρ) = (α ⊗ send ξ) | (receive ξ ⊗ β) | ρ
        let t = conc(vec![g("alpha"), g("beta"), g("rho")]);
        let mut ch = ChannelAlloc::new();
        let result = apply_order(sym("alpha"), sym("beta"), &t, &mut ch);
        let xi = Channel(0);
        assert_eq!(
            result,
            conc(vec![
                seq(vec![g("alpha"), Goal::Send(xi)]),
                seq(vec![Goal::Receive(xi), g("beta")]),
                g("rho"),
            ])
        );
    }

    use crate::goal::conc;

    #[test]
    fn order_semantics_on_concurrent_goal() {
        let t = conc(vec![g("a"), g("b"), g("c")]);
        assert_apply_equiv(&[Constraint::order("a", "b")], &t);
    }

    #[test]
    fn must_semantics_on_nested_goal() {
        let t = seq(vec![g("s"), or(vec![seq(vec![g("a"), g("b")]), g("c")]), g("t")]);
        assert_apply_equiv(&[Constraint::must("b")], &t);
        assert_apply_equiv(&[Constraint::must_not("c")], &t);
        assert_apply_equiv(&[Constraint::must("c")], &t);
    }

    #[test]
    fn klein_order_semantics() {
        let t = conc(vec![or(vec![g("a"), g("x")]), or(vec![g("b"), g("y")])]);
        assert_apply_equiv(&[Constraint::klein_order("a", "b")], &t);
    }

    #[test]
    fn klein_exists_semantics() {
        let t = conc(vec![or(vec![g("a"), g("x")]), or(vec![g("b"), g("y")])]);
        assert_apply_equiv(&[Constraint::klein_exists("a", "b")], &t);
    }

    #[test]
    fn multiple_constraints_compose() {
        let t = conc(vec![or(vec![g("a"), g("x")]), g("b"), or(vec![g("c"), g("y")])]);
        assert_apply_equiv(
            &[Constraint::klein_order("a", "b"), Constraint::must_not("y")],
            &t,
        );
    }

    #[test]
    fn unsatisfiable_combination_yields_nopath() {
        let t = seq(vec![g("a"), g("b")]);
        let compiled = apply(&[Constraint::must("a"), Constraint::must_not("a")], &t);
        assert_eq!(compiled, Goal::NoPath);
    }

    #[test]
    fn order_within_seq_already_satisfied() {
        // a ⊗ b already satisfies a<b; compiled goal should keep exactly
        // that trace (with channel plumbing added).
        let t = seq(vec![g("a"), g("b")]);
        assert_apply_equiv(&[Constraint::order("a", "b")], &t);
    }

    #[test]
    fn order_against_seq_is_nopath_after_traces() {
        // b ⊗ a cannot satisfy a<b: the compiled goal has no valid traces
        // (Excise would rewrite it to ¬path).
        let t = seq(vec![g("b"), g("a")]);
        let compiled = apply(&[Constraint::order("a", "b")], &t);
        assert!(event_traces(&compiled, BUDGET).unwrap().is_empty());
    }

    #[test]
    fn isolation_is_preserved() {
        let t = conc(vec![isolated(seq(vec![g("a"), g("b")])), g("c")]);
        assert_apply_equiv(&[Constraint::must("a")], &t);
        let compiled = apply(&[Constraint::must("a")], &t);
        assert!(format!("{compiled}").contains("iso("));
    }

    #[test]
    fn channel_allocator_fresh_for_goal() {
        let goal = seq(vec![Goal::Send(Channel(5)), g("a")]);
        let mut ch = ChannelAlloc::fresh_for(&goal);
        assert_eq!(ch.fresh(), Channel(6));
        assert_eq!(ch.fresh(), Channel(7));
    }

    #[test]
    fn reflexive_order_is_nopath() {
        let t = conc(vec![g("a"), g("b")]);
        let mut ch = ChannelAlloc::new();
        assert_eq!(apply_order(sym("a"), sym("a"), &t, &mut ch), Goal::NoPath);
    }

    #[test]
    fn size_growth_is_bounded_by_d_per_constraint() {
        // A chain of 6 binary choices; one Klein constraint (d = 3) at most
        // triples the goal plus constant sync overhead.
        let t = seq((0..6).map(|i| or(vec![g(&format!("l{i}")), g(&format!("r{i}"))])).collect());
        let base = t.size();
        let compiled = apply(&[Constraint::klein_order("l0", "l5")], &t);
        assert!(
            compiled.size() <= 3 * base + 24,
            "compiled size {} vs base {}",
            compiled.size(),
            base
        );
    }

    #[test]
    fn serial_three_event_constraint_semantics() {
        let t = conc(vec![g("a"), g("b"), g("c")]);
        assert_apply_equiv(&[Constraint::serial(vec![sym("a"), sym("b"), sym("c")])], &t);
    }

    #[test]
    fn negated_constraint_semantics() {
        let t = conc(vec![g("a"), g("b")]);
        assert_apply_equiv(&[Constraint::not(Constraint::order("a", "b"))], &t);
    }
}
