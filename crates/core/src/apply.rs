//! The `Apply` transformation (paper, §5): compiling constraints into the
//! control flow graph.
//!
//! `Apply(σ, T)` rewrites a unique-event concurrent-Horn goal `T` into a
//! concurrent-Horn goal whose executions are exactly the executions of `T`
//! that satisfy the constraint `σ` — i.e. `Apply(σ, T) ≡ T ∧ σ` with the
//! hard-to-execute `∧` eliminated (Propositions 5.2, 5.4, 5.6). It is a
//! *compilation* step: after it (and [`excise`](mod@crate::excise)), scheduling
//! needs no run-time constraint checking.
//!
//! Three layers, following Definitions 5.1, 5.3, and 5.5:
//!
//! 1. **Primitive constraints** `∇α` / `¬∇α` rewrite structurally. For
//!    `∇α`, serial and concurrent conjunctions distribute into a
//!    disjunction over the position where `α` occurs; subgoals not
//!    mentioning `α` collapse to `¬path`, which the smart constructors
//!    absorb — this pruning is what keeps the output `O(|T|)` per
//!    primitive and is also the feature that "eliminates the parts of the
//!    control graph inconsistent with the constraints".
//! 2. **Order constraints** `∇α ⊗ ∇β` compile via `sync(α<β, ·)`: every
//!    occurrence of `α` becomes `α ⊗ send(ξ)` and every occurrence of `β`
//!    becomes `receive(ξ) ⊗ β` for a fresh channel `ξ`, after both
//!    existence compilations.
//! 3. **General constraints** in the normal form of Corollary 3.5 compile
//!    by `Apply(C₁ ∨ C₂, T) = Apply(C₁, T) ∨ Apply(C₂, T)` and sequential
//!    composition over `∧` — yielding the `O(d^N · |T|)` size bound of
//!    Theorem 5.11.

use crate::constraints::{Basic, Conjunct, Constraint, NormalForm};
use crate::goal::{conc, isolated, or, seq, Channel, Goal};
use crate::symbol::Symbol;

/// How the compiler distributes independent rewriting work over threads.
///
/// The parallel and sequential paths produce **bit-identical** output:
/// channel numbering is fixed up front by pre-partitioning the allocator
/// (see [`ChannelAlloc::reserve`]) and results are merged in input order,
/// so the mode only changes wall-clock time, never the compiled goal.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Parallelism {
    /// Parallelize when the estimated work is large enough to amortize
    /// thread spawn cost; stay sequential on small goals.
    #[default]
    Auto,
    /// Always sequential — the reference path for differential tests.
    Never,
    /// Always parallel, regardless of size — lets tests exercise the
    /// threaded path on small inputs.
    Always,
}

/// Estimated-work floor (goal nodes × independent tasks) above which
/// `Parallelism::Auto` fans out.
const PAR_WORK_THRESHOLD: usize = 1 << 10;

impl Parallelism {
    /// Whether to fan out `tasks` independent pieces of work over an
    /// input of `size` units. Shared by every consumer of the knob (the
    /// compiler's disjunct fan-out, the runtime's Monte-Carlo sampler) so
    /// "how much work justifies threads" is decided in one place.
    pub fn fan_out(self, size: usize, tasks: usize) -> bool {
        match self {
            Parallelism::Never => false,
            Parallelism::Always => tasks > 1,
            Parallelism::Auto => tasks > 1 && size.saturating_mul(tasks) >= PAR_WORK_THRESHOLD,
        }
    }
}

/// Allocator of fresh synchronization channels.
///
/// Each order-constraint compilation must use a channel "new" with respect
/// to the goal (Definition 5.3); the compiler threads one allocator through
/// a whole compilation so channels never collide.
#[derive(Clone, Debug, Default)]
pub struct ChannelAlloc {
    next: u32,
}

impl ChannelAlloc {
    /// A fresh allocator starting at channel 0.
    pub fn new() -> ChannelAlloc {
        ChannelAlloc::default()
    }

    /// An allocator whose channels are fresh with respect to `goal` —
    /// needed when the input goal already contains channels (e.g. incremental
    /// re-compilation of an already-compiled workflow).
    pub fn fresh_for(goal: &Goal) -> ChannelAlloc {
        let next = goal.channels().iter().map(|c| c.0 + 1).max().unwrap_or(0);
        ChannelAlloc { next }
    }

    /// Allocates the next fresh channel.
    pub fn fresh(&mut self) -> Channel {
        let c = Channel(self.next);
        self.next += 1;
        c
    }

    /// Splits off an allocator owning the next `budget` channel numbers,
    /// advancing `self` past them. Pre-partitioning ranges this way gives
    /// every independent disjunct a fixed numbering regardless of the
    /// order (or thread) it runs on, which is what makes the parallel
    /// compile bit-identical to the sequential one. Unused slots in a
    /// range are simply never materialized; channels stay unique either
    /// way.
    pub fn reserve(&mut self, budget: u32) -> ChannelAlloc {
        let start = self.next;
        self.next += budget;
        ChannelAlloc { next: start }
    }
}

/// Upper bound on the channels one conjunct can allocate: one per order
/// basic ([`apply_order`] allocates at most once, and only for orders).
/// Shared with the tabled compiler (`crate::memo`), which must reserve
/// identical per-disjunct ranges to reproduce the untabled numbering.
pub(crate) fn order_budget(conj: &Conjunct) -> u32 {
    conj.iter()
        .filter(|b| matches!(b, Basic::Order(..)))
        .count() as u32
}

/// Applies `f` to every child of an n-ary node. Returns `None` when every
/// result is the same allocation as the original child — the caller then
/// reuses the whole node instead of rebuilding it, so sharing survives even
/// when the event fingerprint gave a false positive. Otherwise returns the
/// rewritten child vector, with untouched children as `Arc` bumps.
pub(crate) fn map_children_shared(
    gs: &crate::goal::GoalList,
    mut f: impl FnMut(&Goal) -> Goal,
) -> Option<Vec<Goal>> {
    let mut out: Option<Vec<Goal>> = None;
    for (i, child) in gs.iter().enumerate() {
        let new = f(child);
        if out.is_none() && new.ptr_eq(child) {
            continue;
        }
        out.get_or_insert_with(|| gs[..i].to_vec()).push(new);
    }
    out
}

/// `Apply(∇α, T)` — Definition 5.1, positive primitive.
///
/// The result's executions are the executions of `T` in which `α` occurs.
/// Returns `¬path` when no execution of `T` contains `α`.
pub fn apply_must(alpha: Symbol, goal: &Goal) -> Goal {
    // Event-index pruning: a subtree whose cached fingerprint excludes α
    // cannot witness ∇α, so the whole walk below would only rebuild it
    // into ¬path. Answer in O(1) instead — this is what keeps the per-
    // position loop over `⊗`/`|` children linear in practice.
    if !goal.may_mention(alpha) {
        return Goal::NoPath;
    }
    match goal {
        Goal::Atom(a) => {
            if a.as_event() == Some(alpha) {
                goal.clone()
            } else {
                Goal::NoPath
            }
        }
        // Apply(∇α, T ⊗ K) = (Apply(∇α,T) ⊗ K) ∨ (T ⊗ Apply(∇α,K)),
        // generalized n-ary: a disjunct per child position. Children not
        // mentioning α yield ¬path and their disjunct is absorbed.
        Goal::Seq(gs) => or((0..gs.len())
            .map(|i| {
                let rewritten = apply_must(alpha, &gs[i]);
                if rewritten.is_nopath() {
                    return Goal::NoPath;
                }
                let mut children = Vec::with_capacity(gs.len());
                children.extend(gs[..i].iter().cloned());
                children.push(rewritten);
                children.extend(gs[i + 1..].iter().cloned());
                seq(children)
            })
            .collect()),
        Goal::Conc(gs) => or((0..gs.len())
            .map(|i| {
                let rewritten = apply_must(alpha, &gs[i]);
                if rewritten.is_nopath() {
                    return Goal::NoPath;
                }
                let mut children = Vec::with_capacity(gs.len());
                children.extend(gs[..i].iter().cloned());
                children.push(rewritten);
                children.extend(gs[i + 1..].iter().cloned());
                conc(children)
            })
            .collect()),
        Goal::Or(gs) => or(gs.iter().map(|g| apply_must(alpha, g)).collect()),
        Goal::Isolated(g) => isolated(apply_must(alpha, g)),
        // Events inside ◇ do not occur on the final execution path (◇
        // consumes no path), so they cannot witness ∇α.
        Goal::Possible(_) => Goal::NoPath,
        Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => Goal::NoPath,
    }
}

/// `Apply(¬∇α, T)` — Definition 5.1, negative primitive.
///
/// The result's executions are the executions of `T` in which `α` does not
/// occur: every occurrence of `α` is replaced by `¬path`, which prunes the
/// containing conjunction and drops the containing `∨`-branch.
pub fn apply_must_not(alpha: Symbol, goal: &Goal) -> Goal {
    // Event-index pruning: a subtree provably not mentioning α is its own
    // rewrite. Returning the clone (an `Arc` bump) hands back the *same*
    // allocation, so unchanged branches stay shared with the input goal.
    if !goal.may_mention(alpha) {
        return goal.clone();
    }
    match goal {
        Goal::Atom(a) => {
            if a.as_event() == Some(alpha) {
                Goal::NoPath
            } else {
                goal.clone()
            }
        }
        Goal::Seq(gs) => match map_children_shared(gs, |g| apply_must_not(alpha, g)) {
            Some(kids) => seq(kids),
            None => goal.clone(),
        },
        Goal::Conc(gs) => match map_children_shared(gs, |g| apply_must_not(alpha, g)) {
            Some(kids) => conc(kids),
            None => goal.clone(),
        },
        Goal::Or(gs) => match map_children_shared(gs, |g| apply_must_not(alpha, g)) {
            Some(kids) => or(kids),
            None => goal.clone(),
        },
        Goal::Isolated(g) => {
            let new = apply_must_not(alpha, g);
            if new.ptr_eq(g) {
                goal.clone()
            } else {
                isolated(new)
            }
        }
        // Occurrences inside ◇ are hypothetical — they do not appear on the
        // execution path, so they cannot violate ¬∇α.
        Goal::Possible(_) => goal.clone(),
        Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => goal.clone(),
    }
}

/// The `sync(α<β, T)` rewriting of Definition 5.3: every occurrence of
/// event `α` becomes `α ⊗ send(ξ)` and every occurrence of `β` becomes
/// `receive(ξ) ⊗ β`.
pub fn sync(alpha: Symbol, beta: Symbol, xi: Channel, goal: &Goal) -> Goal {
    // Event-index pruning: subtrees mentioning neither α nor β are
    // returned as-is (shared), skipping the rebuild entirely.
    if !goal.may_mention(alpha) && !goal.may_mention(beta) {
        return goal.clone();
    }
    match goal {
        Goal::Atom(a) => {
            if a.as_event() == Some(alpha) {
                seq(vec![goal.clone(), Goal::Send(xi)])
            } else if a.as_event() == Some(beta) {
                seq(vec![Goal::Receive(xi), goal.clone()])
            } else {
                goal.clone()
            }
        }
        Goal::Seq(gs) => match map_children_shared(gs, |g| sync(alpha, beta, xi, g)) {
            Some(kids) => seq(kids),
            None => goal.clone(),
        },
        Goal::Conc(gs) => match map_children_shared(gs, |g| sync(alpha, beta, xi, g)) {
            Some(kids) => conc(kids),
            None => goal.clone(),
        },
        Goal::Or(gs) => match map_children_shared(gs, |g| sync(alpha, beta, xi, g)) {
            Some(kids) => or(kids),
            None => goal.clone(),
        },
        Goal::Isolated(g) => {
            let new = sync(alpha, beta, xi, g);
            if new.ptr_eq(g) {
                goal.clone()
            } else {
                isolated(new)
            }
        }
        // Hypothetical occurrences inside ◇ never execute, so they take no
        // part in synchronization.
        Goal::Possible(_) => goal.clone(),
        Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => goal.clone(),
    }
}

/// `Apply(∇α ⊗ ∇β, T)` — Definition 5.3:
/// `sync(α<β, Apply(∇α, Apply(∇β, T)))` with a fresh channel.
pub fn apply_order(alpha: Symbol, beta: Symbol, goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
    if alpha == beta {
        // ∇α ⊗ ∇α requires two occurrences of α: unsatisfiable on
        // unique-event goals.
        return Goal::NoPath;
    }
    let inner = apply_must(alpha, &apply_must(beta, goal));
    if inner.is_nopath() {
        return Goal::NoPath;
    }
    let xi = channels.fresh();
    sync(alpha, beta, xi, &inner)
}

/// `Apply` of a single basic constraint.
pub fn apply_basic(basic: &Basic, goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
    match *basic {
        Basic::Must(e) => apply_must(e, goal),
        Basic::MustNot(e) => apply_must_not(e, goal),
        Basic::Order(a, b) => apply_order(a, b, goal, channels),
    }
}

/// `Apply` of a conjunction of basics: sequential composition — each
/// application preserves the unique-event property, so the next may be
/// applied to its output (Definition 5.5).
pub fn apply_conjunct(conj: &Conjunct, goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
    // An empty conjunct is the trivially-true constraint: the input goal
    // is its own compilation (shared, not copied).
    let Some((first, rest)) = conj.split_first() else {
        return goal.clone();
    };
    let mut current = apply_basic(first, goal, channels);
    for basic in rest {
        if current.is_nopath() {
            return Goal::NoPath;
        }
        current = apply_basic(basic, &current, channels);
    }
    current
}

/// `Apply` of one normalized constraint:
/// `Apply(C₁ ∨ C₂, T) = Apply(C₁, T) ∨ Apply(C₂, T)`.
///
/// Equivalent to [`apply_normal_form_with`] at [`Parallelism::Auto`].
pub fn apply_normal_form(nf: &NormalForm, goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
    apply_normal_form_with(nf, goal, channels, Parallelism::Auto)
}

/// [`apply_normal_form`] with an explicit parallelism mode.
///
/// The disjuncts are independent — each rewrites the *same* input goal —
/// so they fan out across threads. Channel ranges are pre-partitioned per
/// disjunct (see [`ChannelAlloc::reserve`]) and the results merged in
/// disjunct order, making the output identical across modes.
pub fn apply_normal_form_with(
    nf: &NormalForm,
    goal: &Goal,
    channels: &mut ChannelAlloc,
    par: Parallelism,
) -> Goal {
    let disjuncts = &nf.disjuncts;
    if disjuncts.len() == 1 {
        return apply_conjunct(&disjuncts[0], goal, channels);
    }
    let mut allocs: Vec<ChannelAlloc> = disjuncts
        .iter()
        .map(|conj| channels.reserve(order_budget(conj)))
        .collect();
    let results: Vec<Goal> = if par.fan_out(goal.size(), disjuncts.len()) {
        std::thread::scope(|scope| {
            let handles: Vec<_> = disjuncts
                .iter()
                .zip(allocs.iter_mut())
                .map(|(conj, alloc)| scope.spawn(move || apply_conjunct(conj, goal, alloc)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("apply worker panicked"))
                .collect()
        })
    } else {
        disjuncts
            .iter()
            .zip(allocs.iter_mut())
            .map(|(conj, alloc)| apply_conjunct(conj, goal, alloc))
            .collect()
    };
    or(results)
}

/// `Apply(C, G)` for a whole constraint set `C = δ₁ ∧ … ∧ δₙ`
/// (Definition 5.5): constraints are normalized (Corollary 3.5) and
/// compiled in sequence. The output size is `O(d^N · |G|)` in the worst
/// case (Theorem 5.11).
///
/// The result may still contain *knots* — cyclic send/receive waits — and
/// must be passed through [`excise`](crate::excise::excise) before it is
/// used as an executable specification.
///
/// Equivalent to [`apply_all_with`] at [`Parallelism::Auto`].
pub fn apply_all(constraints: &[Constraint], goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
    apply_all_with(constraints, goal, channels, Parallelism::Auto)
}

/// [`apply_all`] with an explicit parallelism mode. Constraints still
/// compose sequentially (each rewrites the previous output); only the
/// disjuncts *within* each constraint fan out.
pub fn apply_all_with(
    constraints: &[Constraint],
    goal: &Goal,
    channels: &mut ChannelAlloc,
    par: Parallelism,
) -> Goal {
    // No constraints: the goal compiles to itself — share it untouched.
    let Some((first, rest)) = constraints.split_first() else {
        return goal.clone();
    };
    let mut current = apply_normal_form_with(&first.normalize(), goal, channels, par);
    for c in rest {
        if current.is_nopath() {
            return Goal::NoPath;
        }
        current = apply_normal_form_with(&c.normalize(), &current, channels, par);
    }
    current
}

/// Convenience wrapper: compiles `constraints` into `goal` with channels
/// fresh for the goal.
pub fn apply(constraints: &[Constraint], goal: &Goal) -> Goal {
    apply_with(constraints, goal, Parallelism::Auto)
}

/// [`apply`] with an explicit parallelism mode.
pub fn apply_with(constraints: &[Constraint], goal: &Goal, par: Parallelism) -> Goal {
    if constraints.is_empty() {
        // Skip even the channel scan — nothing will be allocated.
        return goal.clone();
    }
    let mut channels = ChannelAlloc::fresh_for(goal);
    apply_all_with(constraints, goal, &mut channels, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{event_traces, satisfies};
    use crate::symbol::sym;
    use std::collections::BTreeSet;

    const BUDGET: usize = 200_000;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    /// The oracle check of Propositions 5.2/5.4/5.6:
    /// traces(Apply(C, G)) == { t ∈ traces(G) | t ⊨ C }.
    fn assert_apply_equiv(constraints: &[Constraint], goal: &Goal) {
        let compiled = apply(constraints, goal);
        let got = event_traces(&compiled, BUDGET).unwrap();
        let want: BTreeSet<_> = event_traces(goal, BUDGET)
            .unwrap()
            .into_iter()
            .filter(|t| constraints.iter().all(|c| satisfies(t, c)))
            .collect();
        assert_eq!(got, want, "constraints {constraints:?} on goal {goal}");
    }

    #[test]
    fn paper_example_after_definition_5_1() {
        // Apply(∇β, γ ⊗ (α ∨ β ∨ η) ⊗ δ) = γ ⊗ β ⊗ δ
        let t = seq(vec![
            g("gamma"),
            or(vec![g("alpha"), g("beta"), g("eta")]),
            g("delta"),
        ]);
        let result = apply_must(sym("beta"), &t);
        assert_eq!(result, seq(vec![g("gamma"), g("beta"), g("delta")]));
    }

    #[test]
    fn paper_example_negative_primitive() {
        // Apply(¬∇β, γ ⊗ (α ∨ β ∨ η) ⊗ δ) = γ ⊗ (α ∨ η) ⊗ δ
        let t = seq(vec![
            g("gamma"),
            or(vec![g("alpha"), g("beta"), g("eta")]),
            g("delta"),
        ]);
        let result = apply_must_not(sym("beta"), &t);
        assert_eq!(
            result,
            seq(vec![g("gamma"), or(vec![g("alpha"), g("eta")]), g("delta")])
        );
    }

    #[test]
    fn must_of_absent_event_is_nopath() {
        let t = seq(vec![g("a"), g("b")]);
        assert_eq!(apply_must(sym("zzz"), &t), Goal::NoPath);
    }

    #[test]
    fn must_not_of_absent_event_is_identity() {
        let t = seq(vec![g("a"), or(vec![g("b"), g("c")])]);
        assert_eq!(apply_must_not(sym("zzz"), &t), t);
    }

    #[test]
    fn must_not_prunes_whole_seq_branch() {
        // Removing b kills the whole b-branch of the Or.
        let t = or(vec![seq(vec![g("a"), g("b")]), g("c")]);
        assert_eq!(apply_must_not(sym("b"), &t), g("c"));
    }

    #[test]
    fn paper_example_4_order_on_disjunction() {
        // Apply(∇α ⊗ ∇β, γ ∨ (β ⊗ α)) = receive(ξ) ⊗ β ⊗ α ⊗ send(ξ)
        // (a knot — detected later by Excise).
        let t = or(vec![g("gamma"), seq(vec![g("beta"), g("alpha")])]);
        let mut ch = ChannelAlloc::new();
        let result = apply_order(sym("alpha"), sym("beta"), &t, &mut ch);
        let xi = Channel(0);
        assert_eq!(
            result,
            seq(vec![
                Goal::Receive(xi),
                g("beta"),
                g("alpha"),
                Goal::Send(xi)
            ])
        );
    }

    #[test]
    fn paper_example_4_order_on_concurrence() {
        // Apply(∇α ⊗ ∇β, α | β | ρ) = (α ⊗ send ξ) | (receive ξ ⊗ β) | ρ
        let t = conc(vec![g("alpha"), g("beta"), g("rho")]);
        let mut ch = ChannelAlloc::new();
        let result = apply_order(sym("alpha"), sym("beta"), &t, &mut ch);
        let xi = Channel(0);
        assert_eq!(
            result,
            conc(vec![
                seq(vec![g("alpha"), Goal::Send(xi)]),
                seq(vec![Goal::Receive(xi), g("beta")]),
                g("rho"),
            ])
        );
    }

    use crate::goal::conc;

    #[test]
    fn order_semantics_on_concurrent_goal() {
        let t = conc(vec![g("a"), g("b"), g("c")]);
        assert_apply_equiv(&[Constraint::order("a", "b")], &t);
    }

    #[test]
    fn must_semantics_on_nested_goal() {
        let t = seq(vec![
            g("s"),
            or(vec![seq(vec![g("a"), g("b")]), g("c")]),
            g("t"),
        ]);
        assert_apply_equiv(&[Constraint::must("b")], &t);
        assert_apply_equiv(&[Constraint::must_not("c")], &t);
        assert_apply_equiv(&[Constraint::must("c")], &t);
    }

    #[test]
    fn klein_order_semantics() {
        let t = conc(vec![or(vec![g("a"), g("x")]), or(vec![g("b"), g("y")])]);
        assert_apply_equiv(&[Constraint::klein_order("a", "b")], &t);
    }

    #[test]
    fn klein_exists_semantics() {
        let t = conc(vec![or(vec![g("a"), g("x")]), or(vec![g("b"), g("y")])]);
        assert_apply_equiv(&[Constraint::klein_exists("a", "b")], &t);
    }

    #[test]
    fn multiple_constraints_compose() {
        let t = conc(vec![
            or(vec![g("a"), g("x")]),
            g("b"),
            or(vec![g("c"), g("y")]),
        ]);
        assert_apply_equiv(
            &[Constraint::klein_order("a", "b"), Constraint::must_not("y")],
            &t,
        );
    }

    #[test]
    fn unsatisfiable_combination_yields_nopath() {
        let t = seq(vec![g("a"), g("b")]);
        let compiled = apply(&[Constraint::must("a"), Constraint::must_not("a")], &t);
        assert_eq!(compiled, Goal::NoPath);
    }

    #[test]
    fn order_within_seq_already_satisfied() {
        // a ⊗ b already satisfies a<b; compiled goal should keep exactly
        // that trace (with channel plumbing added).
        let t = seq(vec![g("a"), g("b")]);
        assert_apply_equiv(&[Constraint::order("a", "b")], &t);
    }

    #[test]
    fn order_against_seq_is_nopath_after_traces() {
        // b ⊗ a cannot satisfy a<b: the compiled goal has no valid traces
        // (Excise would rewrite it to ¬path).
        let t = seq(vec![g("b"), g("a")]);
        let compiled = apply(&[Constraint::order("a", "b")], &t);
        assert!(event_traces(&compiled, BUDGET).unwrap().is_empty());
    }

    #[test]
    fn isolation_is_preserved() {
        let t = conc(vec![isolated(seq(vec![g("a"), g("b")])), g("c")]);
        assert_apply_equiv(&[Constraint::must("a")], &t);
        let compiled = apply(&[Constraint::must("a")], &t);
        assert!(format!("{compiled}").contains("iso("));
    }

    #[test]
    fn channel_allocator_fresh_for_goal() {
        let goal = seq(vec![Goal::Send(Channel(5)), g("a")]);
        let mut ch = ChannelAlloc::fresh_for(&goal);
        assert_eq!(ch.fresh(), Channel(6));
        assert_eq!(ch.fresh(), Channel(7));
    }

    #[test]
    fn reflexive_order_is_nopath() {
        let t = conc(vec![g("a"), g("b")]);
        let mut ch = ChannelAlloc::new();
        assert_eq!(apply_order(sym("a"), sym("a"), &t, &mut ch), Goal::NoPath);
    }

    #[test]
    fn size_growth_is_bounded_by_d_per_constraint() {
        // A chain of 6 binary choices; one Klein constraint (d = 3) at most
        // triples the goal plus constant sync overhead.
        let t = seq((0..6)
            .map(|i| or(vec![g(&format!("l{i}")), g(&format!("r{i}"))]))
            .collect());
        let base = t.size();
        let compiled = apply(&[Constraint::klein_order("l0", "l5")], &t);
        assert!(
            compiled.size() <= 3 * base + 24,
            "compiled size {} vs base {}",
            compiled.size(),
            base
        );
    }

    #[test]
    fn apply_shares_untouched_subtrees() {
        // Rewrites rebuild only the spine: syncing `a < b` through
        // `(big ⊗ x) | (big ⊗ a)` must return the untouched `big ⊗ x`
        // branch — and the shared `big` prefix inside the rewritten
        // branch — as the *same* Arc allocations, not copies.
        let big = conc((0..8).map(|i| g(&format!("p{i}"))).collect());
        let left = seq(vec![big.clone(), g("x")]);
        let right = seq(vec![big.clone(), g("a")]);
        let goal = conc(vec![left.clone(), right]);
        let rewritten = sync(sym("a"), sym("b"), Channel(99), &goal);
        let Goal::Conc(branches) = &rewritten else {
            panic!("expected a Conc, got {rewritten}");
        };
        let (Goal::Seq(got), Goal::Seq(want)) = (&branches[0], &left) else {
            panic!("expected Seq branches");
        };
        assert!(
            std::sync::Arc::ptr_eq(got, want),
            "untouched branch was rebuilt"
        );
        let (Goal::Seq(touched), Goal::Conc(orig_big)) = (&branches[1], &big) else {
            panic!("expected Seq branch and Conc prefix");
        };
        let Goal::Conc(inner_big) = &touched[0] else {
            panic!(
                "expected shared prefix inside rewritten branch, got {}",
                touched[0]
            );
        };
        assert!(
            std::sync::Arc::ptr_eq(inner_big, orig_big),
            "shared prefix was rebuilt"
        );
    }

    #[test]
    fn serial_three_event_constraint_semantics() {
        let t = conc(vec![g("a"), g("b"), g("c")]);
        assert_apply_equiv(
            &[Constraint::serial(vec![sym("a"), sym("b"), sym("c")])],
            &t,
        );
    }

    #[test]
    fn negated_constraint_semantics() {
        let t = conc(vec![g("a"), g("b")]);
        assert_apply_equiv(&[Constraint::not(Constraint::order("a", "b"))], &t);
    }
}
