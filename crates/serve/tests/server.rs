//! End-to-end tests over real loopback TCP: the full verb set, burst
//! pipelining on one connection, protocol-fault handling, and clean
//! shutdown with idle connections open.

use ctr_runtime::SharedRuntime;
use ctr_serve::protocol::{self, FaultCode};
use ctr_serve::{Client, ClientError, Request, Response, ServeOptions, Server, WireStatus};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

const PAY: &str = "workflow pay { graph invoice * (approve + reject) * file; }";

fn spawn(
    runtime: SharedRuntime,
) -> (
    SocketAddr,
    ctr_serve::ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(runtime, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

#[test]
fn every_verb_round_trips_and_shutdown_is_clean() {
    let rt = SharedRuntime::new();
    let (addr, _handle, join) = spawn(rt.clone());

    // An idle second connection must not block shutdown.
    let idle = Client::connect(addr).unwrap();

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.deploy(PAY).unwrap(), "pay");
    let id = client.start("pay").unwrap();
    assert_eq!(client.eligible(id).unwrap(), vec!["invoice"]);
    assert_eq!(client.fire(id, "invoice").unwrap(), WireStatus::Running);
    let outcomes = client
        .fire_batch(id, &["approve".to_owned(), "file".to_owned()])
        .unwrap();
    assert_eq!(outcomes.len(), 2);

    // A second instance through fire_many.
    let id2 = client.start("pay").unwrap();
    let outcomes = client
        .fire_many(&[(id2, "invoice".to_owned()), (id2, "reject".to_owned())])
        .unwrap();
    assert_eq!(outcomes.len(), 2);

    // The wire snapshot is the server runtime's snapshot, verbatim.
    assert_eq!(client.snapshot().unwrap(), rt.snapshot());

    let stats = client.stats().unwrap();
    assert_eq!(stats.instances, 2);

    // Typed fault for a ghost instance.
    match client.fire(999_999, "invoice") {
        Err(ClientError::Fault(fault)) => assert_eq!(fault.code, FaultCode::UnknownInstance),
        other => panic!("expected UnknownInstance fault, got {other:?}"),
    }

    client.shutdown().unwrap();
    join.join().unwrap().unwrap();

    // The server runtime is still usable in-process after shutdown.
    assert_eq!(rt.journal(id).unwrap(), vec!["invoice", "approve", "file"]);
    drop(idle);
}

#[test]
fn pipelined_burst_over_one_connection_matches_in_process() {
    let served = SharedRuntime::new();
    let (addr, handle, join) = spawn(served.clone());
    let local = SharedRuntime::new();

    let mut client = Client::connect(addr).unwrap();
    client.deploy(PAY).unwrap();
    local.deploy_source(PAY).unwrap();
    let wire_a = client.start("pay").unwrap();
    let wire_b = client.start("pay").unwrap();
    let local_a = local.start("pay").unwrap();
    let local_b = local.start("pay").unwrap();

    // Interleaved fire + fire_batch over two instances, with a
    // mid-sequence ineligible event, all in one flush.
    let script: Vec<(u64, u64, Vec<&str>)> = vec![
        (wire_a, local_a, vec!["invoice"]),
        (wire_b, local_b, vec!["invoice", "reject"]),
        (wire_a, local_a, vec!["file"]), // ineligible: approve/reject first
        (wire_a, local_a, vec!["approve", "file"]),
        (wire_b, local_b, vec!["file"]),
    ];
    for (wire_id, _, events) in &script {
        if events.len() == 1 {
            client.send(&Request::Fire {
                instance: *wire_id,
                event: events[0].to_owned(),
            });
        } else {
            client.send(&Request::FireBatch {
                instance: *wire_id,
                events: events.iter().map(|s| s.to_string()).collect(),
            });
        }
    }
    client.flush().unwrap();
    let wire_responses: Vec<Response> = script.iter().map(|_| client.recv().unwrap()).collect();

    // The same sequence, sequential in-process calls.
    for (i, (_, local_id, events)) in script.iter().enumerate() {
        if events.len() == 1 {
            let fired = local.fire(*local_id, events[0]);
            match (&wire_responses[i], &fired) {
                (Response::Status(_), Ok(_)) | (Response::Error(_), Err(_)) => {}
                other => panic!("request {i} diverged: {other:?}"),
            }
        } else {
            let outcomes = local.fire_batch(*local_id, events).unwrap();
            match &wire_responses[i] {
                Response::Outcomes(wire) => assert_eq!(wire.len(), outcomes.len()),
                other => panic!("request {i}: expected Outcomes, got {other:?}"),
            }
        }
    }
    assert_eq!(
        served.journal(wire_a).unwrap(),
        local.journal(local_a).unwrap()
    );
    assert_eq!(
        served.journal(wire_b).unwrap(),
        local.journal(local_b).unwrap()
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn a_corrupt_frame_gets_a_typed_error_then_the_connection_closes() {
    let rt = SharedRuntime::new();
    rt.deploy_source(PAY).unwrap();
    let id = rt.start("pay").unwrap();
    let (addr, handle, join) = spawn(rt.clone());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();

    // One well-formed request followed by a CRC-corrupt frame in the
    // same write: the good request still executes, the fault gets a
    // typed Protocol error, then the server closes the connection.
    let mut bytes = Vec::new();
    let mut payload = Vec::new();
    protocol::encode_request(
        &Request::Fire {
            instance: id,
            event: "invoice".to_owned(),
        },
        &mut payload,
    );
    protocol::encode_frame(&payload, &mut bytes);
    let mut bad = Vec::new();
    protocol::encode_frame(&payload, &mut bad);
    let last = bad.len() - 1;
    bad[last] ^= 0x40; // corrupt the payload under an unchanged CRC
    bytes.extend_from_slice(&bad);
    stream.write_all(&bytes).unwrap();

    // Read until EOF, then decode everything the server sent.
    let mut rx = Vec::new();
    stream.read_to_end(&mut rx).unwrap();
    let mut responses = Vec::new();
    while let Some((consumed, payload)) = protocol::split_frame(&rx).unwrap() {
        responses.push(protocol::decode_response(payload).unwrap());
        rx.drain(..consumed);
    }
    assert!(rx.is_empty(), "no torn trailing bytes from the server");
    assert_eq!(responses.len(), 2, "good request answered, fault typed");
    assert!(matches!(
        responses[0],
        Response::Status(WireStatus::Running)
    ));
    match &responses[1] {
        Response::Error(fault) => assert_eq!(fault.code, FaultCode::Protocol),
        other => panic!("expected Protocol fault, got {other:?}"),
    }
    // The committed fire survived the connection teardown.
    assert_eq!(rt.journal(id).unwrap(), vec!["invoice"]);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn handle_shutdown_unblocks_a_server_with_no_traffic() {
    let (_, handle, join) = spawn(SharedRuntime::new());
    handle.shutdown();
    join.join().unwrap().unwrap();
}
