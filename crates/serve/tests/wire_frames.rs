//! Property tests for wire-frame decoding: arbitrary bytes, torn
//! prefixes, single-bit corruption, and hostile length prefixes must
//! all come back as `Ok(None)` (wait for more bytes) or a typed
//! [`WireError`] — never a panic, never a bogus decoded request.

use ctr_serve::protocol::{self, Request, WireError};
use proptest::prelude::*;

fn short_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 0..12)
        .prop_map(|bytes| bytes.iter().map(|b| (b'a' + b) as char).collect())
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        short_string().prop_map(|source| Request::Deploy { source }),
        short_string().prop_map(|workflow| Request::Start { workflow }),
        (0u64..1000, short_string())
            .prop_map(|(instance, event)| Request::Fire { instance, event }),
        (0u64..1000, proptest::collection::vec(short_string(), 0..5))
            .prop_map(|(instance, events)| Request::FireBatch { instance, events }),
        proptest::collection::vec((0u64..1000, short_string()), 0..5)
            .prop_map(|pairs| Request::FireMany { pairs }),
        (0u64..1000).prop_map(|instance| Request::Eligible { instance }),
        Just(Request::Snapshot),
        Just(Request::Stats),
        Just(Request::Shutdown),
    ]
}

fn encode(req: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    protocol::encode_request(req, &mut payload);
    let mut frame = Vec::new();
    protocol::encode_frame(&payload, &mut frame);
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Well-formed frames round-trip exactly.
    #[test]
    fn requests_round_trip_through_a_frame(req in request_strategy()) {
        let frame = encode(&req);
        let (consumed, payload) = protocol::split_frame(&frame)
            .expect("valid frame splits")
            .expect("complete frame is recognized");
        prop_assert_eq!(consumed, frame.len());
        let decoded = protocol::decode_request(payload).expect("valid payload decodes");
        prop_assert_eq!(decoded, req);
    }

    /// Every strict prefix of a valid frame is "wait for more bytes",
    /// never an error and never a partial decode.
    #[test]
    fn torn_frames_are_incomplete_not_errors(req in request_strategy(), cut in 0usize..10_000) {
        let frame = encode(&req);
        let cut = cut % frame.len();
        prop_assert!(matches!(protocol::split_frame(&frame[..cut]), Ok(None)));
    }

    /// Flipping any single bit of a valid frame can never yield a
    /// successfully decoded request: the CRC (or the length prefix)
    /// catches it with a typed error or an incomplete-frame wait.
    #[test]
    fn corrupted_frames_never_decode(req in request_strategy(), pos in 0usize..10_000, bit in 0u8..8) {
        let mut frame = encode(&req);
        let pos = pos % frame.len();
        frame[pos] ^= 1 << bit;
        match protocol::split_frame(&frame) {
            Ok(Some((_, payload))) => {
                // Only reachable if the flip landed in the length
                // prefix and shrank the frame; the CRC re-check makes
                // this impossible, so a decode here is a bug.
                prop_assert!(
                    protocol::decode_request(payload).is_err() || payload.is_empty(),
                    "corrupt frame decoded as a request"
                );
            }
            Ok(None) => {} // flip grew the length prefix: wait state
            Err(
                WireError::BadCrc
                | WireError::Oversized(_)
                | WireError::UnknownVerb(_)
                | WireError::UnknownKind(_)
                | WireError::BadUtf8
                | WireError::Truncated
                | WireError::Trailing(_),
            ) => {}
        }
    }

    /// Arbitrary garbage never panics the splitter or the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(
        raw in proptest::collection::vec(0u16..256, 0..256),
    ) {
        let bytes: Vec<u8> = raw.iter().map(|b| *b as u8).collect();
        if let Ok(Some((consumed, payload))) = protocol::split_frame(&bytes) {
            prop_assert!(consumed <= bytes.len());
            let _ = protocol::decode_request(payload);
            let _ = protocol::decode_response(payload);
        }
    }

    /// A hostile length prefix (up to u32::MAX) is rejected as
    /// Oversized before any allocation, not trusted.
    #[test]
    fn hostile_lengths_are_rejected_up_front(len in ((1u32 << 20) + 1)..u32::MAX) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&[0u8; 4]);
        frame.extend_from_slice(&[0u8; 64]);
        prop_assert!(matches!(
            protocol::split_frame(&frame),
            Err(WireError::Oversized(_))
        ));
    }
}
