//! A small blocking client over the wire protocol, with explicit
//! pipelining: `send` buffers requests locally, `flush` pushes them in
//! one write, `recv` reads responses back in FIFO order. The
//! convenience methods (`fire`, `start`, …) are send + flush + recv —
//! one round trip each — and are what the CLI uses; the load harness
//! uses the split form to keep many requests in flight.

use crate::protocol::{
    self, Fault, Request, Response, WireError, WireOutcome, WireStats, WireStatus,
};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures: transport, framing, or a typed server fault.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server broke framing (or sent an unknown response kind).
    Wire(WireError),
    /// The server answered with a typed fault.
    Fault(Fault),
    /// The server closed the connection mid-response.
    Closed,
    /// The response kind does not match the request (server bug).
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Fault(fault) => write!(f, "server fault: {fault}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// A connection to a `ctr serve` endpoint.
pub struct Client {
    stream: TcpStream,
    /// Requests encoded but not yet written.
    tx: Vec<u8>,
    /// Bytes read but not yet decoded.
    rx: Vec<u8>,
    chunk: Vec<u8>,
    /// Payload scratch reused across `send` calls.
    scratch: Vec<u8>,
}

impl Client {
    /// Connects (TCP, `TCP_NODELAY`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            tx: Vec::new(),
            rx: Vec::new(),
            chunk: vec![0u8; 64 * 1024],
            scratch: Vec::new(),
        })
    }

    /// The underlying stream — the open-loop load driver clones it to
    /// split sending and receiving across threads.
    pub fn raw_stream(&self) -> &TcpStream {
        &self.stream
    }

    // --- Pipelining primitives --------------------------------------------

    /// Buffers one request locally (nothing is written yet).
    pub fn send(&mut self, req: &Request) {
        self.scratch.clear();
        protocol::encode_request(req, &mut self.scratch);
        protocol::encode_frame(&self.scratch, &mut self.tx);
    }

    /// Writes every buffered request in one burst.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.tx.is_empty() {
            self.stream.write_all(&self.tx)?;
            self.tx.clear();
        }
        self.stream.flush()
    }

    /// Reads the next response (FIFO with respect to sent requests).
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        loop {
            if let Some((consumed, payload)) = protocol::split_frame(&self.rx)? {
                let resp = protocol::decode_response(payload)?;
                self.rx.drain(..consumed);
                return Ok(resp);
            }
            let n = self.stream.read(&mut self.chunk)?;
            if n == 0 {
                return Err(ClientError::Closed);
            }
            self.rx.extend_from_slice(&self.chunk[..n]);
        }
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req);
        self.flush()?;
        self.recv()
    }

    // --- One-round-trip conveniences --------------------------------------

    /// Deploys workflow source; returns the deployed name.
    pub fn deploy(&mut self, source: &str) -> Result<String, ClientError> {
        match self.round_trip(&Request::Deploy {
            source: source.to_owned(),
        })? {
            Response::Name(name) => Ok(name),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("deploy wants Name")),
        }
    }

    /// Starts an instance of `workflow`.
    pub fn start(&mut self, workflow: &str) -> Result<u64, ClientError> {
        match self.round_trip(&Request::Start {
            workflow: workflow.to_owned(),
        })? {
            Response::InstanceId(id) => Ok(id),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("start wants InstanceId")),
        }
    }

    /// Fires one event.
    pub fn fire(&mut self, instance: u64, event: &str) -> Result<WireStatus, ClientError> {
        match self.round_trip(&Request::Fire {
            instance,
            event: event.to_owned(),
        })? {
            Response::Status(status) => Ok(status),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("fire wants Status")),
        }
    }

    /// Fires an ordered batch on one instance.
    pub fn fire_batch(
        &mut self,
        instance: u64,
        events: &[String],
    ) -> Result<Vec<WireOutcome>, ClientError> {
        match self.round_trip(&Request::FireBatch {
            instance,
            events: events.to_vec(),
        })? {
            Response::Outcomes(outcomes) => Ok(outcomes),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("fire_batch wants Outcomes")),
        }
    }

    /// Fires a mixed `(instance, event)` batch.
    pub fn fire_many(&mut self, pairs: &[(u64, String)]) -> Result<Vec<WireOutcome>, ClientError> {
        match self.round_trip(&Request::FireMany {
            pairs: pairs.to_vec(),
        })? {
            Response::Outcomes(outcomes) => Ok(outcomes),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("fire_many wants Outcomes")),
        }
    }

    /// Observable eligible events of an instance.
    pub fn eligible(&mut self, instance: u64) -> Result<Vec<String>, ClientError> {
        match self.round_trip(&Request::Eligible { instance })? {
            Response::Names(names) => Ok(names),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("eligible wants Names")),
        }
    }

    /// A consistent fleet snapshot (the canonical text format).
    pub fn snapshot(&mut self) -> Result<String, ClientError> {
        match self.round_trip(&Request::Snapshot)? {
            Response::Text(text) => Ok(text),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("snapshot wants Text")),
        }
    }

    /// Store / fleet counters.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("stats wants Stats")),
        }
    }

    /// Pending `(tick, due_ms)` timers of an instance, due order.
    pub fn timers(&mut self, instance: u64) -> Result<Vec<(String, u64)>, ClientError> {
        match self.round_trip(&Request::Timers { instance })? {
            Response::Timers(timers) => Ok(timers),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("timers wants Timers")),
        }
    }

    /// Advances the fleet clock to `to_ms`, firing every due timer;
    /// returns the `(instance, tick)` firings in order.
    pub fn advance(&mut self, to_ms: u64) -> Result<Vec<(u64, String)>, ClientError> {
        match self.round_trip(&Request::Advance { to_ms })? {
            Response::Fired(fired) => Ok(fired),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("advance wants Fired")),
        }
    }

    /// Cancels the pending timer guarding `event` on `instance`.
    pub fn cancel_timer(&mut self, instance: u64, event: &str) -> Result<(), ClientError> {
        match self.round_trip(&Request::CancelTimer {
            instance,
            event: event.to_owned(),
        })? {
            Response::Unit => Ok(()),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("cancel_timer wants Unit")),
        }
    }

    /// Asks the server to stop (acknowledged before it does).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Unit => Ok(()),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::Unexpected("shutdown wants Unit")),
        }
    }
}
