//! Thread-per-connection TCP server over one [`SharedRuntime`].
//!
//! ## Burst batching — the perf core
//!
//! A connection thread's read loop does not process one request per
//! socket read. It blocks for the *first* byte, then drains everything
//! the kernel has already buffered (a non-blocking drain, bounded by
//! [`ServeOptions::max_burst_bytes`]), decodes every complete frame,
//! and executes the whole **burst** before writing any response:
//!
//! * maximal runs of adjacent `fire` / `fire_batch` requests are
//!   submitted as **one** [`SharedRuntime::fire_runs`] burst — one
//!   shard-lock resolution, one instance-lock acquisition per
//!   referenced instance, and one WAL append (one group commit) per
//!   instance per burst, instead of one of each per request;
//! * every other verb is a barrier executed in arrival order;
//! * all responses of the burst leave in one `write` + flush.
//!
//! Request *semantics* are untouched: `fire_runs` keeps every
//! pipelined request's identity (its failure stops only itself), and
//! responses are FIFO, so a client cannot distinguish a batching
//! server from a naive one except by throughput. Per-instance journal
//! order is the connection's request order — the server batches, it
//! never reorders.
//!
//! ## Admission control
//!
//! In-flight state per connection is bounded twice over: the drain
//! stops at `max_burst_bytes` (the kernel's socket buffer then applies
//! TCP backpressure to the client), and a burst executes at most
//! [`ServeOptions::max_burst_requests`] requests — the excess is
//! answered with a typed [`FaultCode::Busy`] error instead of queueing
//! without bound. A `Busy` request was **not** executed; the client
//! retries it after draining its responses.
//!
//! ## Protocol faults
//!
//! A frame that fails CRC, oversteps [`protocol::MAX_FRAME`], carries
//! an unknown verb, or decodes short/long earns a best-effort
//! [`FaultCode::Protocol`] error response and a closed connection —
//! once framing is in doubt every later byte is, so the server never
//! guesses. Requests of the same burst that decoded cleanly *before*
//! the corrupt frame are executed and answered first; the corrupt
//! frame itself commits nothing.
//!
//! ## Locks held
//!
//! A connection thread calls into the runtime with **no** locks of its
//! own, so the runtime's lock order is the whole story: in particular
//! a `snapshot` request (which takes every shard and instance lock)
//! runs *between* `fire_runs` bursts, never inside one, so it cannot
//! deadlock against this or any other connection's burst.

use crate::protocol::{self, Fault, FaultCode, Request, Response, WireOutcome, WireStats};
use ctr_runtime::{FireOutcome, SharedRuntime};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Tuning knobs for [`Server`]; the defaults suit both tests and the
/// load harness.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Most requests one burst will execute; the rest get
    /// [`FaultCode::Busy`].
    pub max_burst_requests: usize,
    /// Stop draining the socket once this many unprocessed bytes are
    /// buffered (TCP backpressure bounds the rest).
    pub max_burst_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_burst_requests: 256,
            max_burst_bytes: 256 * 1024,
        }
    }
}

struct Inner {
    shutdown: AtomicBool,
    /// Clones of live connection streams, so shutdown can unblock
    /// their reads with `Shutdown::Both`.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    opts: ServeOptions,
    addr: SocketAddr,
}

impl Inner {
    /// Flips the shutdown flag, kicks every blocked connection read,
    /// and unblocks the accept loop. Idempotent.
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for conn in lock(&self.conns).values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // A throwaway connection unblocks `accept`; the loop re-checks
        // the flag before serving it.
        let _ = TcpStream::connect(self.addr);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A handle that can stop a running [`Server`] from another thread
/// (the in-process equivalent of the wire `shutdown` verb).
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Stops the server: wakes the accept loop and every connection.
    pub fn shutdown(&self) {
        self.inner.trigger_shutdown();
    }
}

/// The TCP front-end: `bind`, then `run` (which blocks until the wire
/// `shutdown` verb or a [`ServerHandle::shutdown`]).
pub struct Server {
    runtime: SharedRuntime,
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port; read it back
    /// with [`Server::local_addr`]).
    pub fn bind(runtime: SharedRuntime, addr: &str, opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            runtime,
            listener,
            inner: Arc::new(Inner {
                shutdown: AtomicBool::new(false),
                conns: Mutex::new(BTreeMap::new()),
                next_conn: AtomicU64::new(0),
                opts,
                addr,
            }),
        })
    }

    /// The bound address (the ephemeral port, if 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// A shutdown handle, cloneable across threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Accepts connections until shutdown, one thread per connection;
    /// joins every connection thread before returning, so when `run`
    /// returns the runtime is quiescent and (if store-backed) every
    /// acknowledged fire is persisted.
    pub fn run(self) -> io::Result<()> {
        let mut workers = Vec::new();
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) if self.inner.shutdown.load(Ordering::SeqCst) => break,
                Err(e) => return Err(e),
            };
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let conn_id = self.inner.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                lock(&self.inner.conns).insert(conn_id, clone);
            }
            let runtime = self.runtime.clone();
            let inner = Arc::clone(&self.inner);
            workers.push(std::thread::spawn(move || {
                let _ = serve_connection(&runtime, stream, &inner);
                lock(&inner.conns).remove(&conn_id);
            }));
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Drives one connection; returns on client close, protocol fault,
/// I/O error, or shutdown.
fn serve_connection(rt: &SharedRuntime, mut stream: TcpStream, inner: &Inner) -> io::Result<()> {
    // Responses are written in one buffered burst; Nagle would only
    // add latency on top of that.
    let _ = stream.set_nodelay(true);
    let mut rx: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut tx: Vec<u8> = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    let mut requests: Vec<Request> = Vec::new();
    loop {
        // Blocking read for the first byte of the next burst…
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        rx.extend_from_slice(&chunk[..n]);
        // …then drain whatever else is already buffered, without
        // blocking — this is the window that turns a pipelined client
        // into one `fire_runs` burst.
        if rx.len() < inner.opts.max_burst_bytes {
            stream.set_nonblocking(true)?;
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        rx.extend_from_slice(&chunk[..n]);
                        if rx.len() >= inner.opts.max_burst_bytes {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        stream.set_nonblocking(false)?;
                        return Err(e);
                    }
                }
            }
            stream.set_nonblocking(false)?;
        }
        // Decode every complete frame of the burst.
        requests.clear();
        let mut consumed = 0usize;
        let mut wire_fault = None;
        loop {
            match protocol::split_frame(&rx[consumed..]) {
                Ok(None) => break,
                Ok(Some((frame_len, frame_payload))) => {
                    match protocol::decode_request(frame_payload) {
                        Ok(req) => {
                            consumed += frame_len;
                            requests.push(req);
                        }
                        Err(e) => {
                            wire_fault = Some(e);
                            break;
                        }
                    }
                }
                Err(e) => {
                    wire_fault = Some(e);
                    break;
                }
            }
        }
        rx.drain(..consumed);
        // Execute the burst and write every response at once.
        tx.clear();
        let shutdown = execute_burst(rt, &requests, inner.opts.max_burst_requests, |resp| {
            payload.clear();
            protocol::encode_response(resp, &mut payload);
            protocol::encode_frame(&payload, &mut tx);
        });
        if let Some(e) = &wire_fault {
            let fault = Response::Error(Fault {
                code: FaultCode::Protocol,
                message: e.to_string(),
            });
            payload.clear();
            protocol::encode_response(&fault, &mut payload);
            protocol::encode_frame(&payload, &mut tx);
        }
        stream.write_all(&tx)?;
        stream.flush()?;
        if wire_fault.is_some() {
            // Framing is in doubt: close rather than resynchronize.
            let _ = stream.shutdown(Shutdown::Both);
            return Ok(());
        }
        if shutdown {
            inner.trigger_shutdown();
            return Ok(());
        }
    }
}

/// Executes one burst in request order, emitting one response per
/// request through `emit`; returns whether a shutdown was requested.
///
/// Maximal runs of `Fire`/`FireBatch` become one `fire_runs` call;
/// requests beyond `budget` are answered `Busy` unexecuted.
fn execute_burst(
    rt: &SharedRuntime,
    requests: &[Request],
    budget: usize,
    mut emit: impl FnMut(&Response),
) -> bool {
    let (admitted, refused) = requests.split_at(budget.min(requests.len()));
    let mut shutdown = false;
    let mut i = 0;
    while i < admitted.len() {
        match &admitted[i] {
            Request::Fire { .. } | Request::FireBatch { .. } => {
                let start = i;
                while i < admitted.len()
                    && matches!(
                        admitted[i],
                        Request::Fire { .. } | Request::FireBatch { .. }
                    )
                {
                    i += 1;
                }
                let runs: Vec<(u64, &[String])> = admitted[start..i]
                    .iter()
                    .map(|req| match req {
                        Request::Fire { instance, event } => {
                            (*instance, std::slice::from_ref(event))
                        }
                        Request::FireBatch { instance, events } => (*instance, events.as_slice()),
                        _ => unreachable!("run contains only fire verbs"),
                    })
                    .collect();
                let outcomes = rt.fire_runs(&runs);
                for (req, run) in admitted[start..i].iter().zip(&outcomes) {
                    match req {
                        Request::Fire { .. } => emit(&match &run[0] {
                            FireOutcome::Fired(status) => Response::Status((*status).into()),
                            FireOutcome::Rejected(e) => Response::Error(Fault::from_runtime(e)),
                            FireOutcome::Skipped => {
                                unreachable!("a singleton run is never skipped")
                            }
                        }),
                        Request::FireBatch { .. } => emit(&Response::Outcomes(
                            run.iter().map(WireOutcome::from_runtime).collect(),
                        )),
                        _ => unreachable!(),
                    }
                }
            }
            req => {
                emit(&execute_one(rt, req, &mut shutdown));
                i += 1;
            }
        }
    }
    for _ in refused {
        emit(&Response::Error(Fault {
            code: FaultCode::Busy,
            message: format!("burst budget of {budget} requests exceeded; retry"),
        }));
    }
    shutdown
}

/// Executes one barrier request.
fn execute_one(rt: &SharedRuntime, req: &Request, shutdown: &mut bool) -> Response {
    match req {
        Request::Deploy { source } => match rt.deploy_source(source) {
            Ok(name) => Response::Name(name),
            Err(e) => Response::Error(Fault::from_runtime(&e)),
        },
        Request::Start { workflow } => match rt.start(workflow) {
            Ok(id) => Response::InstanceId(id),
            Err(e) => Response::Error(Fault::from_runtime(&e)),
        },
        Request::FireMany { pairs } => Response::Outcomes(
            rt.fire_many(pairs)
                .iter()
                .map(WireOutcome::from_runtime)
                .collect(),
        ),
        // The hot poll path: interned symbols go straight onto the wire
        // (`Response::Symbols` encodes as `Names`), so a poll allocates
        // no per-name `String`s server-side.
        Request::Eligible { instance } => match rt.eligible_symbols(*instance) {
            Ok(events) => Response::Symbols(events),
            Err(e) => Response::Error(Fault::from_runtime(&e)),
        },
        Request::Snapshot => Response::Text(rt.snapshot()),
        Request::Stats => {
            let stats = rt.store_stats().unwrap_or_default();
            Response::Stats(WireStats {
                appends: stats.appends,
                events: stats.events,
                fsyncs: stats.fsyncs,
                instances: rt.instances().len() as u64,
                timers: rt.pending_timer_count() as u64,
                clock_ms: rt.clock_ms(),
            })
        }
        Request::Timers { instance } => match rt.pending_timers(*instance) {
            Ok(timers) => Response::Timers(timers),
            Err(e) => Response::Error(Fault::from_runtime(&e)),
        },
        Request::Advance { to_ms } => match rt.advance(*to_ms) {
            Ok(fired) => Response::Fired(fired),
            Err(e) => Response::Error(Fault::from_runtime(&e)),
        },
        Request::CancelTimer { instance, event } => match rt.cancel_timer(*instance, event) {
            Ok(()) => Response::Unit,
            Err(e) => Response::Error(Fault::from_runtime(&e)),
        },
        Request::Shutdown => {
            *shutdown = true;
            Response::Unit
        }
        Request::Fire { .. } | Request::FireBatch { .. } => {
            unreachable!("fire verbs batch through fire_runs")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireStatus;

    const PAY: &str = "workflow pay { graph invoice * (approve + reject) * file; }";

    fn collect_burst(rt: &SharedRuntime, requests: &[Request], budget: usize) -> Vec<Response> {
        let mut out = Vec::new();
        execute_burst(rt, requests, budget, |resp| out.push(resp.clone()));
        out
    }

    #[test]
    fn bursts_answer_every_request_in_order() {
        let rt = SharedRuntime::new();
        rt.deploy_source(PAY).unwrap();
        let id = rt.start("pay").unwrap();
        let requests = vec![
            Request::Fire {
                instance: id,
                event: "invoice".into(),
            },
            Request::FireBatch {
                instance: id,
                events: vec!["approve".into(), "file".into()],
            },
            Request::Eligible { instance: id },
        ];
        let responses = collect_burst(&rt, &requests, 256);
        assert_eq!(responses.len(), 3);
        assert!(matches!(
            responses[0],
            Response::Status(WireStatus::Running)
        ));
        match &responses[1] {
            Response::Outcomes(outcomes) => {
                assert_eq!(outcomes.len(), 2);
                assert!(outcomes.iter().all(|o| matches!(o, WireOutcome::Fired(_))));
            }
            other => panic!("expected Outcomes, got {other:?}"),
        }
        match &responses[2] {
            Response::Symbols(events) => assert!(events.is_empty(), "completed: {events:?}"),
            other => panic!("expected Symbols, got {other:?}"),
        }
        assert_eq!(
            rt.journal(id).unwrap(),
            vec!["invoice", "approve", "file"],
            "burst coalescing must not reorder a single instance's events"
        );
    }

    #[test]
    fn timer_verbs_list_advance_and_cancel() {
        const TIMED: &str =
            "workflow timed { graph invoice * approve * file; after(approve, 30s); }";
        let rt = SharedRuntime::new();
        rt.deploy_source(TIMED).unwrap();
        let id = rt.start("timed").unwrap();
        let requests = vec![
            Request::Timers { instance: id },
            Request::Advance { to_ms: 30_000 },
            Request::Stats,
            Request::CancelTimer {
                instance: id,
                event: "approve@after30000".into(),
            },
        ];
        let responses = collect_burst(&rt, &requests, 256);
        match &responses[0] {
            Response::Timers(timers) => {
                assert_eq!(
                    timers.as_slice(),
                    &[("approve@after30000".to_owned(), 30_000)]
                );
            }
            other => panic!("expected Timers, got {other:?}"),
        }
        match &responses[1] {
            Response::Fired(fired) => {
                assert_eq!(fired.as_slice(), &[(id, "approve@after30000".to_owned())]);
            }
            other => panic!("expected Fired, got {other:?}"),
        }
        match &responses[2] {
            Response::Stats(stats) => {
                assert_eq!(stats.timers, 0, "the fired timer left the wheel");
                assert_eq!(stats.clock_ms, 30_000);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        // The timer already fired, so cancelling it is a typed fault.
        match &responses[3] {
            Response::Error(fault) => assert_eq!(fault.code, FaultCode::UnknownTimer),
            other => panic!("expected UnknownTimer, got {other:?}"),
        }
    }

    #[test]
    fn requests_beyond_the_burst_budget_are_busy_not_executed() {
        let rt = SharedRuntime::new();
        rt.deploy_source(PAY).unwrap();
        let id = rt.start("pay").unwrap();
        let requests = vec![
            Request::Fire {
                instance: id,
                event: "invoice".into(),
            },
            Request::Fire {
                instance: id,
                event: "approve".into(),
            },
            Request::Fire {
                instance: id,
                event: "file".into(),
            },
        ];
        let responses = collect_burst(&rt, &requests, 2);
        assert_eq!(responses.len(), 3, "refused requests still get answers");
        assert!(matches!(
            responses[0],
            Response::Status(WireStatus::Running)
        ));
        assert!(matches!(
            responses[1],
            Response::Status(WireStatus::Running)
        ));
        match &responses[2] {
            Response::Error(fault) => assert_eq!(fault.code, FaultCode::Busy),
            other => panic!("expected Busy, got {other:?}"),
        }
        // The refused fire never reached the runtime.
        assert_eq!(rt.journal(id).unwrap(), vec!["invoice", "approve"]);
        assert_eq!(rt.eligible(id).unwrap(), vec!["file"]);
    }

    #[test]
    fn shutdown_mid_burst_still_answers_the_rest() {
        let rt = SharedRuntime::new();
        rt.deploy_source(PAY).unwrap();
        let id = rt.start("pay").unwrap();
        let requests = vec![
            Request::Shutdown,
            Request::Fire {
                instance: id,
                event: "invoice".into(),
            },
        ];
        let mut out = Vec::new();
        let shutdown = execute_burst(&rt, &requests, 256, |resp| out.push(resp.clone()));
        assert!(shutdown);
        assert!(matches!(out[0], Response::Unit));
        assert!(matches!(out[1], Response::Status(WireStatus::Running)));
    }
}
