//! Standalone load harness: `loadgen bench [--quick]` regenerates
//! `BENCH_serve.json`; `loadgen ADDR [flags]` drives an external
//! `ctr serve` endpoint. See `loadgen --help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ctr_serve::loadgen::cli_main(&args) {
        Ok(text) => println!("{text}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
