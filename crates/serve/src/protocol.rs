//! The wire protocol: length-prefixed, CRC-checked binary frames.
//!
//! Every message — request or response — travels as one **frame**:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! `len` is the payload length (at most [`MAX_FRAME`]); `crc` is the
//! CRC-32 (IEEE) of the payload, computed with the same
//! [`ctr_store::crc32`] the WAL uses for its record frames. The check
//! is not decorative: a frame whose CRC mismatches is a transport-level
//! fault ([`WireError::BadCrc`]), and the server closes the connection
//! rather than guess at intent.
//!
//! Payloads are a one-byte tag (request verb or response kind) followed
//! by the body. Scalars are little-endian; strings are `u32` length +
//! UTF-8 bytes; vectors are `u32` count + elements. Decoding is strict
//! both ways: a body shorter than its fields claim is
//! [`WireError::Truncated`], longer is [`WireError::Trailing`] — a
//! complete frame either decodes to exactly one typed message or fails
//! with a typed error, never partially.
//!
//! Responses carry no request ids: the server answers every request of
//! a connection **in request order** (pipelining is FIFO), so the
//! correlation is positional, like Redis.

use ctr_runtime::{FireOutcome, InstanceStatus, RuntimeError, Symbol};
use std::fmt;

/// Hard ceiling on a frame's payload length. Large enough for any
/// realistic snapshot page or batch, small enough that a corrupt or
/// hostile length prefix cannot balloon the receive buffer.
pub const MAX_FRAME: usize = 1 << 20;

/// Frame header length: payload length + CRC, both `u32` LE.
pub const FRAME_HEADER: usize = 8;

/// Typed decoding faults. Any of these on the server side earns the
/// client a [`FaultCode::Protocol`] error response (best effort) and a
/// closed connection — once framing is in doubt, every later byte is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The payload does not match its CRC.
    BadCrc,
    /// The first payload byte is not a known request verb.
    UnknownVerb(u8),
    /// The first payload byte is not a known response kind.
    UnknownKind(u8),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// The payload ends before its declared fields do.
    Truncated,
    /// The payload has bytes left over after its last field.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            WireError::BadCrc => write!(f, "frame payload does not match its crc"),
            WireError::UnknownVerb(v) => write!(f, "unknown request verb 0x{v:02x}"),
            WireError::UnknownKind(k) => write!(f, "unknown response kind 0x{k:02x}"),
            WireError::BadUtf8 => write!(f, "string field is not valid utf-8"),
            WireError::Truncated => write!(f, "payload ends before its declared fields"),
            WireError::Trailing(n) => write!(f, "{n} bytes of trailing garbage after payload"),
        }
    }
}

impl std::error::Error for WireError {}

// --- Framing ---------------------------------------------------------------

/// Appends one frame carrying `payload` to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&ctr_store::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Attempts to split one frame off the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a frame prefix (read more
/// bytes and retry) and `Ok(Some((consumed, payload)))` for a complete,
/// CRC-verified frame. Oversized lengths and CRC mismatches are typed
/// errors — the caller must drop the connection, since byte alignment
/// can no longer be trusted.
pub fn split_frame(buf: &[u8]) -> Result<Option<(usize, &[u8])>, WireError> {
    if buf.len() < FRAME_HEADER {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let Some(payload) = buf.get(FRAME_HEADER..FRAME_HEADER + len) else {
        return Ok(None);
    };
    if ctr_store::crc32(payload) != crc {
        return Err(WireError::BadCrc);
    }
    Ok(Some((FRAME_HEADER + len, payload)))
}

// --- Body primitives -------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Strict reader over a payload: every `take_*` fails typed on
/// underrun, and [`Reader::finish`] fails typed on leftovers.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn take_str(&mut self) -> Result<String, WireError> {
        let len = self.take_u32()? as usize;
        // The length is bounded by the frame, so `take` rejects any
        // claim the payload cannot back.
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn take_count(&mut self) -> Result<usize, WireError> {
        let n = self.take_u32()? as usize;
        // A count can never exceed the remaining bytes (every element
        // is at least one byte): reject early instead of letting a
        // hostile count drive a huge reserve.
        if n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Trailing(self.buf.len()))
        }
    }
}

// --- Requests --------------------------------------------------------------

const VERB_DEPLOY: u8 = 0x01;
const VERB_START: u8 = 0x02;
const VERB_FIRE: u8 = 0x03;
const VERB_FIRE_BATCH: u8 = 0x04;
const VERB_FIRE_MANY: u8 = 0x05;
const VERB_ELIGIBLE: u8 = 0x06;
const VERB_SNAPSHOT: u8 = 0x07;
const VERB_STATS: u8 = 0x08;
const VERB_SHUTDOWN: u8 = 0x09;
const VERB_TIMERS: u8 = 0x0A;
const VERB_ADVANCE: u8 = 0x0B;
const VERB_CANCEL_TIMER: u8 = 0x0C;

/// One client request. The `Fire`/`FireBatch` verbs are the hot path:
/// the server coalesces adjacent pipelined ones into a single
/// `SharedRuntime::fire_runs` burst (see `server.rs`); everything else
/// is a barrier executed in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Deploy a workflow from source text; answers [`Response::Name`].
    Deploy { source: String },
    /// Start an instance; answers [`Response::InstanceId`].
    Start { workflow: String },
    /// Fire one event; answers [`Response::Status`].
    Fire { instance: u64, event: String },
    /// Fire an ordered batch on one instance; answers
    /// [`Response::Outcomes`] (one per event).
    FireBatch { instance: u64, events: Vec<String> },
    /// Fire a mixed `(instance, event)` batch; answers
    /// [`Response::Outcomes`] (one per pair, input positions).
    FireMany { pairs: Vec<(u64, String)> },
    /// Observable eligible events; answers [`Response::Names`].
    Eligible { instance: u64 },
    /// Consistent fleet snapshot; answers [`Response::Text`].
    Snapshot,
    /// Store / fleet counters; answers [`Response::Stats`].
    Stats,
    /// Stop the server (after answering [`Response::Unit`]).
    Shutdown,
    /// Pending timers of one instance; answers [`Response::Timers`].
    Timers { instance: u64 },
    /// Advance the fleet's logical clock, firing every timer due at or
    /// before `to_ms`; answers [`Response::Fired`].
    Advance { to_ms: u64 },
    /// Cancel a pending timer by its guarded event name; answers
    /// [`Response::Unit`].
    CancelTimer { instance: u64, event: String },
}

/// Encodes a request payload (frame it with [`encode_frame`]).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Deploy { source } => {
            out.push(VERB_DEPLOY);
            put_str(out, source);
        }
        Request::Start { workflow } => {
            out.push(VERB_START);
            put_str(out, workflow);
        }
        Request::Fire { instance, event } => {
            out.push(VERB_FIRE);
            put_u64(out, *instance);
            put_str(out, event);
        }
        Request::FireBatch { instance, events } => {
            out.push(VERB_FIRE_BATCH);
            put_u64(out, *instance);
            out.extend_from_slice(&(events.len() as u32).to_le_bytes());
            for event in events {
                put_str(out, event);
            }
        }
        Request::FireMany { pairs } => {
            out.push(VERB_FIRE_MANY);
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (instance, event) in pairs {
                put_u64(out, *instance);
                put_str(out, event);
            }
        }
        Request::Eligible { instance } => {
            out.push(VERB_ELIGIBLE);
            put_u64(out, *instance);
        }
        Request::Snapshot => out.push(VERB_SNAPSHOT),
        Request::Stats => out.push(VERB_STATS),
        Request::Shutdown => out.push(VERB_SHUTDOWN),
        Request::Timers { instance } => {
            out.push(VERB_TIMERS);
            put_u64(out, *instance);
        }
        Request::Advance { to_ms } => {
            out.push(VERB_ADVANCE);
            put_u64(out, *to_ms);
        }
        Request::CancelTimer { instance, event } => {
            out.push(VERB_CANCEL_TIMER);
            put_u64(out, *instance);
            put_str(out, event);
        }
    }
}

/// Decodes a request payload. Total: a complete frame yields exactly
/// one request or one typed error.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let req = match r.take_u8()? {
        VERB_DEPLOY => Request::Deploy {
            source: r.take_str()?,
        },
        VERB_START => Request::Start {
            workflow: r.take_str()?,
        },
        VERB_FIRE => Request::Fire {
            instance: r.take_u64()?,
            event: r.take_str()?,
        },
        VERB_FIRE_BATCH => {
            let instance = r.take_u64()?;
            let n = r.take_count()?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(r.take_str()?);
            }
            Request::FireBatch { instance, events }
        }
        VERB_FIRE_MANY => {
            let n = r.take_count()?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let instance = r.take_u64()?;
                pairs.push((instance, r.take_str()?));
            }
            Request::FireMany { pairs }
        }
        VERB_ELIGIBLE => Request::Eligible {
            instance: r.take_u64()?,
        },
        VERB_SNAPSHOT => Request::Snapshot,
        VERB_STATS => Request::Stats,
        VERB_SHUTDOWN => Request::Shutdown,
        VERB_TIMERS => Request::Timers {
            instance: r.take_u64()?,
        },
        VERB_ADVANCE => Request::Advance {
            to_ms: r.take_u64()?,
        },
        VERB_CANCEL_TIMER => Request::CancelTimer {
            instance: r.take_u64()?,
            event: r.take_str()?,
        },
        verb => return Err(WireError::UnknownVerb(verb)),
    };
    r.finish()?;
    Ok(req)
}

// --- Responses -------------------------------------------------------------

const KIND_NAME: u8 = 0x81;
const KIND_ID: u8 = 0x82;
const KIND_STATUS: u8 = 0x83;
const KIND_OUTCOMES: u8 = 0x84;
const KIND_NAMES: u8 = 0x85;
const KIND_TEXT: u8 = 0x86;
const KIND_UNIT: u8 = 0x87;
const KIND_STATS: u8 = 0x88;
const KIND_TIMERS: u8 = 0x89;
const KIND_FIRED: u8 = 0x8A;
const KIND_ERROR: u8 = 0xEE;

const STATUS_RUNNING: u8 = 0;
const STATUS_COMPLETED: u8 = 1;

const OUTCOME_FIRED: u8 = 0;
const OUTCOME_REJECTED: u8 = 1;
const OUTCOME_SKIPPED: u8 = 2;

/// Why a request (or one event of a batch) failed, as a stable wire
/// code — clients branch on the code, the message is for humans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultCode {
    /// The event is not eligible at the instance's current stage.
    NotEligible = 1,
    /// No instance with this id.
    UnknownInstance = 2,
    /// No workflow deployed under this name.
    UnknownWorkflow = 3,
    /// The instance already completed.
    AlreadyComplete = 4,
    /// The durable store rejected the operation (nothing committed).
    Store = 5,
    /// The specification failed to parse, compile, or verify.
    Spec = 6,
    /// Journal/snapshot corruption on the server.
    Corrupt = 7,
    /// Admission control: the burst exceeded the connection's budget;
    /// retry after draining responses.
    Busy = 8,
    /// The peer broke the wire protocol (the connection is closing).
    Protocol = 9,
    /// No pending timer guards this event on this instance.
    UnknownTimer = 10,
}

impl FaultCode {
    fn from_u8(v: u8) -> Option<FaultCode> {
        Some(match v {
            1 => FaultCode::NotEligible,
            2 => FaultCode::UnknownInstance,
            3 => FaultCode::UnknownWorkflow,
            4 => FaultCode::AlreadyComplete,
            5 => FaultCode::Store,
            6 => FaultCode::Spec,
            7 => FaultCode::Corrupt,
            8 => FaultCode::Busy,
            9 => FaultCode::Protocol,
            10 => FaultCode::UnknownTimer,
            _ => return None,
        })
    }
}

/// A typed error response (or rejected batch event).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    pub code: FaultCode,
    pub message: String,
}

impl Fault {
    /// Maps a runtime error onto its wire fault.
    pub fn from_runtime(e: &RuntimeError) -> Fault {
        let code = match e {
            RuntimeError::NotEligible { .. } => FaultCode::NotEligible,
            RuntimeError::UnknownInstance(_) => FaultCode::UnknownInstance,
            RuntimeError::UnknownWorkflow(_) => FaultCode::UnknownWorkflow,
            RuntimeError::AlreadyComplete(_) => FaultCode::AlreadyComplete,
            RuntimeError::Store(_) => FaultCode::Store,
            RuntimeError::Parse(_) | RuntimeError::Compile(_) | RuntimeError::Inconsistent(_) => {
                FaultCode::Spec
            }
            RuntimeError::Snapshot(_) | RuntimeError::Journal(_) => FaultCode::Corrupt,
            RuntimeError::UnknownTimer { .. } => FaultCode::UnknownTimer,
        };
        Fault {
            code,
            message: e.to_string(),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Instance status on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireStatus {
    Running,
    Completed,
}

impl From<InstanceStatus> for WireStatus {
    fn from(s: InstanceStatus) -> WireStatus {
        match s {
            InstanceStatus::Running => WireStatus::Running,
            InstanceStatus::Completed => WireStatus::Completed,
        }
    }
}

/// Per-event batch outcome on the wire; mirrors
/// [`ctr_runtime::FireOutcome`] with the error typed as a [`Fault`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    Fired(WireStatus),
    Rejected(Fault),
    Skipped,
}

impl WireOutcome {
    /// Maps a runtime outcome onto its wire form.
    pub fn from_runtime(o: &FireOutcome) -> WireOutcome {
        match o {
            FireOutcome::Fired(status) => WireOutcome::Fired((*status).into()),
            FireOutcome::Rejected(e) => WireOutcome::Rejected(Fault::from_runtime(e)),
            FireOutcome::Skipped => WireOutcome::Skipped,
        }
    }
}

/// Store / fleet counters over the wire — enough for a load harness to
/// compute fsyncs-per-fire without touching the server's disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Durable record appends (0 without a store).
    pub appends: u64,
    /// Journal events appended durably (0 without a store).
    pub events: u64,
    /// Data fsyncs issued (0 without a store or on `MemStore`).
    pub fsyncs: u64,
    /// Instances known to the runtime (running and completed).
    pub instances: u64,
    /// Timers pending across the fleet.
    pub timers: u64,
    /// The fleet's logical clock, in milliseconds.
    pub clock_ms: u64,
}

/// One server response; see [`Request`] for the pairing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    Name(String),
    InstanceId(u64),
    Status(WireStatus),
    Outcomes(Vec<WireOutcome>),
    Names(Vec<String>),
    /// Server-side twin of [`Response::Names`]: encodes interned
    /// symbols straight onto the wire (same `KIND_NAMES` bytes, no
    /// per-name `String` allocation — the `Eligible` hot poll path).
    /// Decoding always yields `Names`.
    Symbols(Vec<Symbol>),
    Text(String),
    Unit,
    Stats(WireStats),
    /// Pending `(tick, due_ms)` timers of one instance, due order.
    Timers(Vec<(String, u64)>),
    /// Timers fired by an `Advance`, as `(instance, tick)` in firing
    /// order.
    Fired(Vec<(u64, String)>),
    Error(Fault),
}

/// Encodes a response payload (frame it with [`encode_frame`]).
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Name(name) => {
            out.push(KIND_NAME);
            put_str(out, name);
        }
        Response::InstanceId(id) => {
            out.push(KIND_ID);
            put_u64(out, *id);
        }
        Response::Status(status) => {
            out.push(KIND_STATUS);
            out.push(match status {
                WireStatus::Running => STATUS_RUNNING,
                WireStatus::Completed => STATUS_COMPLETED,
            });
        }
        Response::Outcomes(outcomes) => {
            out.push(KIND_OUTCOMES);
            out.extend_from_slice(&(outcomes.len() as u32).to_le_bytes());
            for outcome in outcomes {
                match outcome {
                    WireOutcome::Fired(status) => {
                        out.push(OUTCOME_FIRED);
                        out.push(match status {
                            WireStatus::Running => STATUS_RUNNING,
                            WireStatus::Completed => STATUS_COMPLETED,
                        });
                    }
                    WireOutcome::Rejected(fault) => {
                        out.push(OUTCOME_REJECTED);
                        out.push(fault.code as u8);
                        put_str(out, &fault.message);
                    }
                    WireOutcome::Skipped => out.push(OUTCOME_SKIPPED),
                }
            }
        }
        Response::Names(names) => {
            out.push(KIND_NAMES);
            out.extend_from_slice(&(names.len() as u32).to_le_bytes());
            for name in names {
                put_str(out, name);
            }
        }
        Response::Symbols(symbols) => {
            out.push(KIND_NAMES);
            out.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
            for symbol in symbols {
                put_str(out, symbol.as_str());
            }
        }
        Response::Timers(timers) => {
            out.push(KIND_TIMERS);
            out.extend_from_slice(&(timers.len() as u32).to_le_bytes());
            for (tick, due_ms) in timers {
                put_str(out, tick);
                put_u64(out, *due_ms);
            }
        }
        Response::Fired(fired) => {
            out.push(KIND_FIRED);
            out.extend_from_slice(&(fired.len() as u32).to_le_bytes());
            for (instance, tick) in fired {
                put_u64(out, *instance);
                put_str(out, tick);
            }
        }
        Response::Text(text) => {
            out.push(KIND_TEXT);
            put_str(out, text);
        }
        Response::Unit => out.push(KIND_UNIT),
        Response::Stats(stats) => {
            out.push(KIND_STATS);
            put_u64(out, stats.appends);
            put_u64(out, stats.events);
            put_u64(out, stats.fsyncs);
            put_u64(out, stats.instances);
            put_u64(out, stats.timers);
            put_u64(out, stats.clock_ms);
        }
        Response::Error(fault) => {
            out.push(KIND_ERROR);
            out.push(fault.code as u8);
            put_str(out, &fault.message);
        }
    }
}

fn take_status(r: &mut Reader<'_>) -> Result<WireStatus, WireError> {
    match r.take_u8()? {
        STATUS_RUNNING => Ok(WireStatus::Running),
        STATUS_COMPLETED => Ok(WireStatus::Completed),
        k => Err(WireError::UnknownKind(k)),
    }
}

fn take_fault(r: &mut Reader<'_>) -> Result<Fault, WireError> {
    let code = r.take_u8()?;
    let code = FaultCode::from_u8(code).ok_or(WireError::UnknownKind(code))?;
    Ok(Fault {
        code,
        message: r.take_str()?,
    })
}

/// Decodes a response payload; inverse of [`encode_response`].
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let resp = match r.take_u8()? {
        KIND_NAME => Response::Name(r.take_str()?),
        KIND_ID => Response::InstanceId(r.take_u64()?),
        KIND_STATUS => Response::Status(take_status(&mut r)?),
        KIND_OUTCOMES => {
            let n = r.take_count()?;
            let mut outcomes = Vec::with_capacity(n);
            for _ in 0..n {
                outcomes.push(match r.take_u8()? {
                    OUTCOME_FIRED => WireOutcome::Fired(take_status(&mut r)?),
                    OUTCOME_REJECTED => WireOutcome::Rejected(take_fault(&mut r)?),
                    OUTCOME_SKIPPED => WireOutcome::Skipped,
                    k => return Err(WireError::UnknownKind(k)),
                });
            }
            Response::Outcomes(outcomes)
        }
        KIND_NAMES => {
            let n = r.take_count()?;
            let mut names = Vec::with_capacity(n);
            for _ in 0..n {
                names.push(r.take_str()?);
            }
            Response::Names(names)
        }
        KIND_TEXT => Response::Text(r.take_str()?),
        KIND_UNIT => Response::Unit,
        KIND_STATS => Response::Stats(WireStats {
            appends: r.take_u64()?,
            events: r.take_u64()?,
            fsyncs: r.take_u64()?,
            instances: r.take_u64()?,
            timers: r.take_u64()?,
            clock_ms: r.take_u64()?,
        }),
        KIND_TIMERS => {
            let n = r.take_count()?;
            let mut timers = Vec::with_capacity(n);
            for _ in 0..n {
                let tick = r.take_str()?;
                timers.push((tick, r.take_u64()?));
            }
            Response::Timers(timers)
        }
        KIND_FIRED => {
            let n = r.take_count()?;
            let mut fired = Vec::with_capacity(n);
            for _ in 0..n {
                let instance = r.take_u64()?;
                fired.push((instance, r.take_str()?));
            }
            Response::Fired(fired)
        }
        KIND_ERROR => Response::Error(take_fault(&mut r)?),
        kind => return Err(WireError::UnknownKind(kind)),
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(req: &Request) -> Vec<u8> {
        let mut payload = Vec::new();
        encode_request(req, &mut payload);
        let mut out = Vec::new();
        encode_frame(&payload, &mut out);
        out
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Deploy {
                source: "workflow w { graph a * b; }".to_owned(),
            },
            Request::Start {
                workflow: "w".to_owned(),
            },
            Request::Fire {
                instance: 7,
                event: "a".to_owned(),
            },
            Request::FireBatch {
                instance: u64::MAX,
                events: vec!["a".to_owned(), "b".to_owned()],
            },
            Request::FireMany {
                pairs: vec![(0, "a".to_owned()), (3, "β".to_owned())],
            },
            Request::Eligible { instance: 0 },
            Request::Snapshot,
            Request::Stats,
            Request::Shutdown,
            Request::Timers { instance: 9 },
            Request::Advance { to_ms: 86_400_000 },
            Request::CancelTimer {
                instance: 9,
                event: "approve".to_owned(),
            },
        ];
        for req in &requests {
            let bytes = frame(req);
            let (consumed, payload) = split_frame(&bytes).unwrap().expect("complete");
            assert_eq!(consumed, bytes.len());
            assert_eq!(&decode_request(payload).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Name("w".to_owned()),
            Response::InstanceId(42),
            Response::Status(WireStatus::Completed),
            Response::Outcomes(vec![
                WireOutcome::Fired(WireStatus::Running),
                WireOutcome::Rejected(Fault {
                    code: FaultCode::NotEligible,
                    message: "event `x` is not eligible now".to_owned(),
                }),
                WireOutcome::Skipped,
            ]),
            Response::Names(vec!["a".to_owned(), "b".to_owned()]),
            Response::Text("instance 0 of w [running]: a\n".to_owned()),
            Response::Unit,
            Response::Stats(WireStats {
                appends: 1,
                events: 2,
                fsyncs: 3,
                instances: 4,
                timers: 5,
                clock_ms: 6,
            }),
            Response::Timers(vec![
                ("approve@deadline60000".to_owned(), 60_000),
                ("poll@after5000".to_owned(), 5_000),
            ]),
            Response::Fired(vec![(3, "poll@after5000".to_owned())]),
            Response::Error(Fault {
                code: FaultCode::Busy,
                message: "burst budget exceeded".to_owned(),
            }),
        ];
        for resp in &responses {
            let mut payload = Vec::new();
            encode_response(resp, &mut payload);
            let mut bytes = Vec::new();
            encode_frame(&payload, &mut bytes);
            let (_, payload) = split_frame(&bytes).unwrap().expect("complete");
            assert_eq!(&decode_response(payload).unwrap(), resp);
        }
    }

    #[test]
    fn symbols_encode_as_names_on_the_wire() {
        // The server's allocation-free Eligible path must be
        // byte-identical to the `Names` encoding clients decode.
        let symbols = Response::Symbols(vec![Symbol::intern("a"), Symbol::intern("approve")]);
        let names = Response::Names(vec!["a".to_owned(), "approve".to_owned()]);
        let (mut sym_bytes, mut name_bytes) = (Vec::new(), Vec::new());
        encode_response(&symbols, &mut sym_bytes);
        encode_response(&names, &mut name_bytes);
        assert_eq!(sym_bytes, name_bytes);
        assert_eq!(decode_response(&sym_bytes).unwrap(), names);
    }

    #[test]
    fn torn_frames_wait_for_more_bytes() {
        let bytes = frame(&Request::Snapshot);
        for cut in 0..bytes.len() {
            assert_eq!(
                split_frame(&bytes[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes is incomplete, not an error"
            );
        }
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        // Flipped payload bit → BadCrc.
        let mut bytes = frame(&Request::Snapshot);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(split_frame(&bytes), Err(WireError::BadCrc));

        // Oversized length prefix.
        let mut oversized = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        oversized.extend_from_slice(&[0; 12]);
        assert_eq!(
            split_frame(&oversized),
            Err(WireError::Oversized(MAX_FRAME + 1))
        );

        // Unknown verb in a well-framed payload.
        let mut bytes = Vec::new();
        encode_frame(&[0x7f], &mut bytes);
        let (_, payload) = split_frame(&bytes).unwrap().unwrap();
        assert_eq!(decode_request(payload), Err(WireError::UnknownVerb(0x7f)));

        // Truncated body: Fire with only 4 of 8 instance-id bytes.
        let mut bytes = Vec::new();
        encode_frame(&[VERB_FIRE, 1, 2, 3, 4], &mut bytes);
        let (_, payload) = split_frame(&bytes).unwrap().unwrap();
        assert_eq!(decode_request(payload), Err(WireError::Truncated));

        // Trailing garbage after a complete body.
        let mut payload = Vec::new();
        encode_request(&Request::Snapshot, &mut payload);
        payload.push(0);
        let mut bytes = Vec::new();
        encode_frame(&payload, &mut bytes);
        let (_, payload) = split_frame(&bytes).unwrap().unwrap();
        assert_eq!(decode_request(payload), Err(WireError::Trailing(1)));

        // Bad UTF-8 in a string field.
        let mut payload = vec![VERB_START];
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xff, 0xfe]);
        let mut bytes = Vec::new();
        encode_frame(&payload, &mut bytes);
        let (_, payload) = split_frame(&bytes).unwrap().unwrap();
        assert_eq!(decode_request(payload), Err(WireError::BadUtf8));
    }

    #[test]
    fn hostile_counts_cannot_balloon_allocation() {
        // A FireBatch claiming u32::MAX events in a tiny payload must
        // fail typed before any proportional allocation.
        let mut payload = vec![VERB_FIRE_BATCH];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&payload), Err(WireError::Truncated));
    }
}
