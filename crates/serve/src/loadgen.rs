//! The load harness behind `ctr load` and the `loadgen` binary.
//!
//! Drives a `ctr serve` endpoint with N connections × M active
//! instances per connection over a generated chain workflow, in two
//! traffic shapes:
//!
//! * **closed loop** — each connection keeps `depth` requests in
//!   flight and sends the next burst only after the previous one is
//!   fully answered. `depth = 1` is the honest one-request-per-round-
//!   trip baseline; larger depths are the pipelined shape the server's
//!   burst batching is built for.
//! * **open loop** — each connection *offers* a fixed request rate on
//!   a schedule, regardless of responses (a sender and a receiver
//!   thread per connection). Latency under an offered rate is the
//!   number capacity planning wants; a closed loop can never measure
//!   it because it self-throttles.
//!
//! The harness records client-observed p50/p99 latency, wall-clock
//! throughput, and — through the wire `stats` verb — the server's
//! fsyncs-per-fire, so a durability configuration's coalescing shows
//! up in the same table as its latency cost. [`bench_json`] spins up
//! in-process servers (real loopback TCP) for every
//! {connections} × {durability} cell and writes `BENCH_serve.json`,
//! leading with the [`crate::host_json_row`] — a scaling curve from a
//! 1-CPU CI box must say so.

use crate::client::{Client, ClientError};
use crate::protocol::{self, Request, Response};
use crate::server::{ServeOptions, Server};
use ctr_runtime::SharedRuntime;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Traffic shape; see the module docs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mode {
    /// `depth` requests in flight per connection, burst by burst.
    Closed,
    /// Offered load: this many fires per second *per connection*.
    Open { rate_per_conn: u64 },
}

/// One load run's shape.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Concurrent connections.
    pub connections: usize,
    /// Active instances each connection rotates through — the
    /// per-burst fan-out a server burst can group by instance.
    pub active_instances: usize,
    /// Fire requests per connection.
    pub fires_per_conn: usize,
    /// Pipeline depth (closed loop; 1 = one request per round trip).
    pub depth: usize,
    /// Chain length of the generated workload workflow.
    pub events: usize,
    /// Closed or open loop.
    pub mode: Mode,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            connections: 4,
            active_instances: 8,
            fires_per_conn: 5_000,
            depth: 64,
            events: 32,
            mode: Mode::Closed,
        }
    }
}

/// What a load run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Fires acknowledged (every one `Fired` — the chain plan never
    /// offers an ineligible event).
    pub total_fires: usize,
    /// Instances started (setup, untimed).
    pub instances_started: usize,
    /// First-send to last-response across all connections.
    pub wall: Duration,
    /// `total_fires / wall`.
    pub fires_per_sec: f64,
    /// Client-observed median latency, microseconds.
    pub p50_us: u64,
    /// Client-observed 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Server store appends over the run (0 without a store).
    pub appends: u64,
    /// Server commit fsyncs over the run (0 without a store).
    pub fsyncs: u64,
    /// `fsyncs / total_fires`.
    pub fsyncs_per_fire: f64,
}

/// The generated workload: a chain workflow, so every instance accepts
/// exactly `e0 … e{n-1}` in order and the plan below is always
/// eligible.
pub fn chain_source(events: usize, name: &str) -> String {
    use std::fmt::Write as _;
    let mut src = format!("workflow {name} {{ graph ");
    for i in 0..events {
        if i > 0 {
            src.push_str(" * ");
        }
        let _ = write!(src, "e{i}");
    }
    src.push_str("; }");
    src
}

/// Deterministic fire plan for one connection: round-robin over a
/// window of `window` active slots, each slot walking the chain and
/// pulling a fresh instance ordinal when exhausted. Returns the
/// `(ordinal, event_index)` sequence and how many instances it needs.
fn build_plan(fires: usize, events: usize, window: usize) -> (Vec<(usize, usize)>, usize) {
    let window = window.max(1);
    let mut slots: Vec<(usize, usize)> = (0..window).map(|i| (i, 0)).collect();
    let mut next_ordinal = window;
    let mut pairs = Vec::with_capacity(fires);
    for k in 0..fires {
        let s = k % window;
        if slots[s].1 == events {
            slots[s] = (next_ordinal, 0);
            next_ordinal += 1;
        }
        pairs.push((slots[s].0, slots[s].1));
        slots[s].1 += 1;
    }
    (pairs, next_ordinal)
}

/// Starts `count` instances over one connection (pipelined, untimed).
/// Chunked well under the server's default burst budget so a large
/// plan's setup is never answered `Busy`.
fn start_instances(
    client: &mut Client,
    workflow: &str,
    count: usize,
) -> Result<Vec<u64>, ClientError> {
    const CHUNK: usize = 128;
    let mut ids = Vec::with_capacity(count);
    let mut remaining = count;
    while remaining > 0 {
        let chunk = remaining.min(CHUNK);
        for _ in 0..chunk {
            client.send(&Request::Start {
                workflow: workflow.to_owned(),
            });
        }
        client.flush()?;
        for _ in 0..chunk {
            match client.recv()? {
                Response::InstanceId(id) => ids.push(id),
                Response::Error(fault) => return Err(ClientError::Fault(fault)),
                _ => return Err(ClientError::Unexpected("start wants InstanceId")),
            }
        }
        remaining -= chunk;
    }
    Ok(ids)
}

struct ConnResult {
    latencies_us: Vec<u64>,
    started: Instant,
    finished: Instant,
    instances: usize,
}

/// Closed loop: bursts of `depth`, each fully answered before the
/// next. Latency is flush-to-response per request.
fn run_closed(
    client: &mut Client,
    plan: &[(usize, usize)],
    ids: &[u64],
    event_names: &[String],
    depth: usize,
    latencies_us: &mut Vec<u64>,
) -> Result<(), ClientError> {
    let depth = depth.max(1);
    let mut sent = 0;
    while sent < plan.len() {
        let burst = &plan[sent..(sent + depth).min(plan.len())];
        for &(ordinal, event) in burst {
            client.send(&Request::Fire {
                instance: ids[ordinal],
                event: event_names[event].clone(),
            });
        }
        let t0 = Instant::now();
        client.flush()?;
        for _ in burst {
            match client.recv()? {
                Response::Status(_) => {}
                Response::Error(fault) => return Err(ClientError::Fault(fault)),
                _ => return Err(ClientError::Unexpected("fire wants Status")),
            }
            latencies_us.push(t0.elapsed().as_micros() as u64);
        }
        sent += burst.len();
    }
    Ok(())
}

/// Open loop: a sender paces fires on a fixed schedule while a
/// receiver drains responses and stamps latency against the exact
/// send instants (FIFO responses make the pairing positional).
fn run_open(
    stream: &TcpStream,
    plan: &[(usize, usize)],
    ids: &[u64],
    event_names: &[String],
    rate_per_conn: u64,
    latencies_us: &mut Vec<u64>,
) -> Result<(), ClientError> {
    let interval = Duration::from_secs_f64(1.0 / rate_per_conn.max(1) as f64);
    let (stamp_tx, stamp_rx) = mpsc::channel::<Instant>();
    let mut sender = stream.try_clone().map_err(ClientError::Io)?;
    let mut receiver = stream.try_clone().map_err(ClientError::Io)?;
    std::thread::scope(|scope| -> Result<(), ClientError> {
        let send_side = scope.spawn(move || -> Result<(), ClientError> {
            let mut payload = Vec::new();
            let mut frame = Vec::new();
            let start = Instant::now();
            for (k, &(ordinal, event)) in plan.iter().enumerate() {
                let due = start + interval * (k as u32);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                payload.clear();
                protocol::encode_request(
                    &Request::Fire {
                        instance: ids[ordinal],
                        event: event_names[event].clone(),
                    },
                    &mut payload,
                );
                frame.clear();
                protocol::encode_frame(&payload, &mut frame);
                sender.write_all(&frame)?;
                let _ = stamp_tx.send(Instant::now());
            }
            Ok(())
        });
        let mut rx: Vec<u8> = Vec::new();
        let mut chunk = vec![0u8; 64 * 1024];
        let mut answered = 0;
        while answered < plan.len() {
            if let Some((consumed, payload)) = protocol::split_frame(&rx)? {
                let resp = protocol::decode_response(payload)?;
                rx.drain(..consumed);
                match resp {
                    Response::Status(_) => {}
                    Response::Error(fault) => return Err(ClientError::Fault(fault)),
                    _ => return Err(ClientError::Unexpected("fire wants Status")),
                }
                let sent_at = stamp_rx
                    .recv()
                    .expect("sender stamps before receiver pairs");
                latencies_us.push(sent_at.elapsed().as_micros() as u64);
                answered += 1;
                continue;
            }
            let n = receiver.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Closed);
            }
            rx.extend_from_slice(&chunk[..n]);
        }
        send_side.join().expect("sender thread")?;
        Ok(())
    })
}

/// Runs one load shape against a serving endpoint. Deploys the chain
/// workload, pre-starts every instance the plan needs (untimed), then
/// fires the measured phase and reads the server's store counters
/// before and after.
pub fn drive(addr: &str, opts: &LoadOptions) -> Result<LoadReport, ClientError> {
    let workflow = "wireload";
    let source = chain_source(opts.events, workflow);
    let event_names: Vec<String> = (0..opts.events).map(|i| format!("e{i}")).collect();
    let mut control = Client::connect(addr)?;
    control.deploy(&source)?;
    let stats_before = control.stats()?;

    let (plan, instances_needed) =
        build_plan(opts.fires_per_conn, opts.events, opts.active_instances);
    let barrier = Barrier::new(opts.connections);
    let results: Vec<Result<ConnResult, ClientError>> = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..opts.connections {
            let plan = &plan;
            let event_names = &event_names;
            let barrier = &barrier;
            workers.push(scope.spawn(move || -> Result<ConnResult, ClientError> {
                let mut client = Client::connect(addr)?;
                let ids = start_instances(&mut client, workflow, instances_needed)?;
                let mut latencies_us = Vec::with_capacity(plan.len());
                barrier.wait();
                let started = Instant::now();
                match opts.mode {
                    Mode::Closed => run_closed(
                        &mut client,
                        plan,
                        &ids,
                        event_names,
                        opts.depth,
                        &mut latencies_us,
                    )?,
                    Mode::Open { rate_per_conn } => run_open(
                        client.raw_stream(),
                        plan,
                        &ids,
                        event_names,
                        rate_per_conn,
                        &mut latencies_us,
                    )?,
                }
                Ok(ConnResult {
                    latencies_us,
                    started,
                    finished: Instant::now(),
                    instances: ids.len(),
                })
            }));
        }
        workers
            .into_iter()
            .map(|w| w.join().expect("connection thread"))
            .collect()
    });

    let mut latencies: Vec<u64> = Vec::new();
    let mut first_send: Option<Instant> = None;
    let mut last_recv: Option<Instant> = None;
    let mut instances_started = 0;
    for result in results {
        let conn = result?;
        latencies.extend(conn.latencies_us);
        first_send = Some(first_send.map_or(conn.started, |t| t.min(conn.started)));
        last_recv = Some(last_recv.map_or(conn.finished, |t| t.max(conn.finished)));
        instances_started += conn.instances;
    }
    let stats_after = control.stats()?;
    let wall = match (first_send, last_recv) {
        (Some(a), Some(b)) => b.duration_since(a),
        _ => Duration::ZERO,
    };
    latencies.sort_unstable();
    let pct = |p: usize| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[(latencies.len() * p / 100).min(latencies.len() - 1)]
    };
    let total_fires = latencies.len();
    let fsyncs = stats_after.fsyncs.saturating_sub(stats_before.fsyncs);
    Ok(LoadReport {
        total_fires,
        instances_started,
        wall,
        fires_per_sec: if wall.is_zero() {
            0.0
        } else {
            total_fires as f64 / wall.as_secs_f64()
        },
        p50_us: pct(50),
        p99_us: pct(99),
        appends: stats_after.appends.saturating_sub(stats_before.appends),
        fsyncs,
        fsyncs_per_fire: if total_fires == 0 {
            0.0
        } else {
            fsyncs as f64 / total_fires as f64
        },
    })
}

// --- BENCH_serve.json ------------------------------------------------------

/// Spins up an in-process server over real loopback TCP.
fn spawn_server(
    runtime: SharedRuntime,
) -> (
    std::net::SocketAddr,
    crate::server::ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(runtime, "127.0.0.1:0", ServeOptions::default())
        .expect("bind loopback ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// One durability configuration of the scaling table.
fn bench_runtime(durability: &str) -> (SharedRuntime, Option<std::path::PathBuf>) {
    match durability {
        "mem" => (
            SharedRuntime::with_store(std::sync::Arc::new(ctr_store::MemStore::new())),
            None,
        ),
        "wal_coalesced" => {
            let dir = std::env::temp_dir().join(format!(
                "ctr_serve_bench_{}_{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos())
                    .unwrap_or(0)
            ));
            let store = ctr_store::WalStore::open_with(
                &dir,
                ctr_store::WalOptions {
                    durability: ctr_store::Durability::coalesced(),
                    ..ctr_store::WalOptions::default()
                },
            )
            .expect("open WAL store in temp dir");
            (
                SharedRuntime::with_store(std::sync::Arc::new(store)),
                Some(dir),
            )
        }
        other => unreachable!("unknown durability {other}"),
    }
}

/// Regenerates `BENCH_serve.json`: {1, 2, 4, 8} connections ×
/// {mem, wal_coalesced}, each cell measured one-request-per-round-trip
/// (`depth 1`) and pipelined (`depth 64`) over the same server, plus
/// one open-loop row. The first row is the host-facts row — the core
/// count is what decides whether a curve can honestly claim
/// multi-core scaling.
pub fn bench_json(path: &str, quick: bool) -> std::io::Result<()> {
    let (rtt_fires, pipe_fires) = if quick { (200, 2_000) } else { (1_500, 24_000) };
    // Half the server's default burst budget: deep enough to amortize
    // syscalls and appends, shallow enough that setup chunks and the
    // measured bursts never trip admission control.
    let depth = 128;
    let mut rows = vec![crate::host_json_row(if quick { &["smoke"] } else { &[] })];
    for durability in ["mem", "wal_coalesced"] {
        for connections in [1usize, 2, 4, 8] {
            let (runtime, dir) = bench_runtime(durability);
            let (addr, handle, join) = spawn_server(runtime);
            let addr = addr.to_string();
            let rtt = drive(
                &addr,
                &LoadOptions {
                    connections,
                    fires_per_conn: rtt_fires,
                    depth: 1,
                    ..LoadOptions::default()
                },
            )
            .expect("rtt load run");
            let pipelined = drive(
                &addr,
                &LoadOptions {
                    connections,
                    fires_per_conn: pipe_fires,
                    depth,
                    ..LoadOptions::default()
                },
            )
            .expect("pipelined load run");
            handle.shutdown();
            join.join()
                .expect("server thread")
                .expect("server exits cleanly");
            if let Some(dir) = dir {
                let _ = std::fs::remove_dir_all(dir);
            }
            let speedup = if rtt.fires_per_sec > 0.0 {
                pipelined.fires_per_sec / rtt.fires_per_sec
            } else {
                0.0
            };
            rows.push(format!(
                "  {{\"name\": \"serve/{durability}x{connections}\", \"durability\": \"{durability}\", \
                 \"connections\": {connections}, \"active_instances\": {}, \
                 \"rtt_fires\": {}, \"rtt_fires_per_sec\": {:.0}, \"rtt_p50_us\": {}, \"rtt_p99_us\": {}, \
                 \"rtt_fsyncs_per_fire\": {:.4}, \
                 \"pipelined_depth\": {depth}, \"pipelined_fires\": {}, \"pipelined_fires_per_sec\": {:.0}, \
                 \"pipelined_p50_us\": {}, \"pipelined_p99_us\": {}, \"pipelined_fsyncs_per_fire\": {:.4}, \
                 \"batching_speedup\": {:.2}}}",
                LoadOptions::default().active_instances,
                rtt.total_fires,
                rtt.fires_per_sec,
                rtt.p50_us,
                rtt.p99_us,
                rtt.fsyncs_per_fire,
                pipelined.total_fires,
                pipelined.fires_per_sec,
                pipelined.p50_us,
                pipelined.p99_us,
                pipelined.fsyncs_per_fire,
                speedup,
            ));
            eprintln!(
                "serve/{durability}x{connections}: rtt {:.0}/s (p50 {}us) → pipelined {:.0}/s (p50 {}us), {:.1}x",
                rtt.fires_per_sec, rtt.p50_us, pipelined.fires_per_sec, pipelined.p50_us, speedup
            );
        }
    }
    // One open-loop row: latency under an offered rate the closed loop
    // cannot measure (it self-throttles).
    {
        let (runtime, _) = bench_runtime("mem");
        let (addr, handle, join) = spawn_server(runtime);
        let rate = if quick { 2_000 } else { 10_000 };
        let fires = if quick { 1_000 } else { 10_000 };
        let report = drive(
            &addr.to_string(),
            &LoadOptions {
                connections: 2,
                fires_per_conn: fires,
                mode: Mode::Open {
                    rate_per_conn: rate,
                },
                ..LoadOptions::default()
            },
        )
        .expect("open-loop load run");
        handle.shutdown();
        join.join()
            .expect("server thread")
            .expect("server exits cleanly");
        rows.push(format!(
            "  {{\"name\": \"serve/open_memx2@{rate}\", \"durability\": \"mem\", \"connections\": 2, \
             \"offered_per_conn\": {rate}, \"total_fires\": {}, \"achieved_fires_per_sec\": {:.0}, \
             \"p50_us\": {}, \"p99_us\": {}}}",
            report.total_fires, report.fires_per_sec, report.p50_us, report.p99_us,
        ));
    }
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    std::fs::write(path, &json)?;
    eprintln!("wrote {path} ({} rows)", rows.len());
    Ok(())
}

// --- CLI entry point (shared by the `loadgen` binary and `ctr load`) ------

/// Usage text for `loadgen` / `ctr load`.
pub const LOAD_USAGE: &str = "\
usage:
  load bench [--quick] [--out PATH]
      regenerate the BENCH_serve.json scaling table against in-process
      servers ({1,2,4,8} connections x {mem, wal_coalesced}, closed
      loop at depth 1 and 64, plus one open-loop row)
  load ADDR [flags]
      drive an external `ctr serve` endpoint and print one report
      --connections N   concurrent connections        (default 4)
      --instances M     active instances/connection   (default 8)
      --fires F         fire requests per connection  (default 5000)
      --depth D         pipeline depth; 1 = one request per round trip
                        (default 64)
      --events E        chain length of the generated workload
                        (default 32)
      --rate R          open loop: offered fires/sec per connection
                        (closed loop when absent)
      --shutdown        ask the server to exit after the run

examples:
  ctr serve --addr 127.0.0.1:7171 &
  ctr load 127.0.0.1:7171 --connections 8 --depth 64
  ctr load 127.0.0.1:7171 --connections 2 --depth 1 --fires 500
  ctr load 127.0.0.1:7171 --rate 5000 --fires 20000
  ctr load bench --quick --out BENCH_serve.json";

fn parse_flag_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Parses `load` arguments and runs the requested shape. Returns the
/// human-readable report text (already printed to stderr progress-wise
/// by the bench path).
pub fn cli_main(args: &[String]) -> Result<String, String> {
    let Some(first) = args.first() else {
        return Err(LOAD_USAGE.to_owned());
    };
    if first == "--help" || first == "-h" || first == "help" {
        return Ok(LOAD_USAGE.to_owned());
    }
    if first == "bench" {
        let mut quick = false;
        let mut out = "BENCH_serve.json".to_owned();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => quick = true,
                "--out" => out = parse_flag_value(args, &mut i, "--out")?,
                other => return Err(format!("unknown bench flag {other}\n\n{LOAD_USAGE}")),
            }
            i += 1;
        }
        bench_json(&out, quick).map_err(|e| format!("bench failed: {e}"))?;
        return Ok(format!("wrote {out}"));
    }
    let addr = first.clone();
    let mut opts = LoadOptions::default();
    let mut shutdown = false;
    let mut rate: Option<u64> = None;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let int = |v: String| -> Result<usize, String> {
            v.parse::<usize>()
                .map_err(|_| format!("{flag} wants an integer, got {v}"))
        };
        match flag {
            "--connections" => opts.connections = int(parse_flag_value(args, &mut i, flag)?)?,
            "--instances" => opts.active_instances = int(parse_flag_value(args, &mut i, flag)?)?,
            "--fires" => opts.fires_per_conn = int(parse_flag_value(args, &mut i, flag)?)?,
            "--depth" => opts.depth = int(parse_flag_value(args, &mut i, flag)?)?,
            "--events" => opts.events = int(parse_flag_value(args, &mut i, flag)?)?.max(1),
            "--rate" => rate = Some(int(parse_flag_value(args, &mut i, flag)?)? as u64),
            "--shutdown" => shutdown = true,
            other => return Err(format!("unknown load flag {other}\n\n{LOAD_USAGE}")),
        }
        i += 1;
    }
    if let Some(rate_per_conn) = rate {
        opts.mode = Mode::Open { rate_per_conn };
    }
    let report = drive(&addr, &opts).map_err(|e| format!("load run failed: {e}"))?;
    let mut text = format!(
        "{} fires over {} connection(s) in {:.3}s\n\
         throughput  {:.0} fires/sec\n\
         latency     p50 {}us  p99 {}us\n\
         instances   {} started\n\
         store       {} appends, {} fsyncs ({:.4} fsyncs/fire)",
        report.total_fires,
        opts.connections,
        report.wall.as_secs_f64(),
        report.fires_per_sec,
        report.p50_us,
        report.p99_us,
        report.instances_started,
        report.appends,
        report.fsyncs,
        report.fsyncs_per_fire,
    );
    if shutdown {
        let mut control =
            Client::connect(&addr).map_err(|e| format!("shutdown connect failed: {e}"))?;
        control
            .shutdown()
            .map_err(|e| format!("shutdown failed: {e}"))?;
        text.push_str("\nserver    shutdown acknowledged");
    }
    Ok(text)
}
