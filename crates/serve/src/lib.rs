//! Network front-end for the sharded workflow runtime.
//!
//! The paper's enactment story assumes a workflow *server*: external
//! agents report events as they happen, and the runtime accepts or
//! rejects them against the compiled control state. This crate is that
//! front-end over [`ctr_runtime::SharedRuntime`]:
//!
//! * [`protocol`] — the length-prefixed, CRC-checked binary wire
//!   format (see `DESIGN.md` §16 for the spec);
//! * [`server`] — a thread-per-connection TCP server whose read loop
//!   coalesces pipelined `fire`/`fire_batch` requests into
//!   `SharedRuntime::fire_runs` bursts: one instance-lock acquisition
//!   and one WAL group commit per instance per network read burst;
//! * [`client`] — a blocking client with explicit pipelining;
//! * [`loadgen`] — the load harness behind `ctr load` and the
//!   `loadgen` binary: closed- and open-loop drivers, latency
//!   percentiles, and the `BENCH_serve.json` scaling table.
//!
//! ## Host facts
//!
//! Every `BENCH_*.json` table starts with a [`host_json_row`]: core
//! count, a stable hostname hash, and build flags. A scaling claim
//! measured on a 1-CPU CI box is not a scaling claim — the row is what
//! makes each table's provenance checkable after the fact.

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{Fault, FaultCode, Request, Response, WireError, WireOutcome, WireStatus};
pub use server::{ServeOptions, Server, ServerHandle};

/// What kind of machine produced a benchmark table.
#[derive(Clone, Debug)]
pub struct HostFacts {
    /// Cores available to this process (`available_parallelism`).
    pub num_cpus: usize,
    /// FNV-1a hash of the hostname, hex — stable across runs on the
    /// same box, anonymous everywhere else.
    pub hostname_hash: String,
    /// Comma-separated build/run flags (`release`/`debug` plus
    /// whatever the caller adds, e.g. `smoke`).
    pub flags: String,
}

/// Collects host facts, appending `extra_flags` to the build flag.
pub fn host_facts(extra_flags: &[&str]) -> HostFacts {
    let num_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let hostname = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .or_else(|| std::env::var("COMPUTERNAME").ok())
        .unwrap_or_else(|| "unknown".to_owned());
    // FNV-1a, 64-bit.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in hostname.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut flags = vec![if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }];
    flags.extend_from_slice(extra_flags);
    HostFacts {
        num_cpus,
        hostname_hash: format!("{hash:016x}"),
        flags: flags.join(","),
    }
}

/// The host-facts row every `BENCH_*.json` array leads with (no
/// trailing comma or newline — the caller joins rows).
pub fn host_json_row(extra_flags: &[&str]) -> String {
    let facts = host_facts(extra_flags);
    format!(
        "  {{\"name\": \"host\", \"num_cpus\": {}, \"hostname_hash\": \"{}\", \"flags\": \"{}\"}}",
        facts.num_cpus, facts.hostname_hash, facts.flags
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_facts_are_populated_and_stable() {
        let a = host_facts(&["smoke"]);
        let b = host_facts(&["smoke"]);
        assert!(a.num_cpus >= 1);
        assert_eq!(a.hostname_hash, b.hostname_hash);
        assert_eq!(a.hostname_hash.len(), 16);
        assert!(a.flags.ends_with(",smoke"));
        let row = host_json_row(&[]);
        assert!(row.contains("\"name\": \"host\""));
        assert!(row.contains("\"num_cpus\""));
        assert!(row.contains("\"hostname_hash\""));
    }
}
