//! R1 — engineering bench (not a paper claim): the cost profile of the
//! event-sourced runtime. Each instance holds a cached incremental
//! cursor, so firing event `k` is O(eligible set) regardless of journal
//! length — instance lifetime cost is linear in path length. Only the
//! recovery paths (snapshot restore, explicit invalidation) replay the
//! journal, and each replays it exactly once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctr_runtime::Runtime;
use std::time::Duration;

fn spec(n: usize) -> String {
    let chain: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
    format!("workflow chain {{ graph {}; }}", chain.join(" * "))
}

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("r1_instance_lifetime");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 32, 128] {
        let source = spec(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rt = Runtime::new();
                rt.deploy_source(&source).unwrap();
                let id = rt.start("chain").unwrap();
                for i in 0..n {
                    rt.fire(id, &format!("s{i}")).unwrap();
                }
                assert!(rt.is_complete(id).unwrap());
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("r1_snapshot_restore");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 32, 128] {
        let source = spec(n);
        let mut rt = Runtime::new();
        rt.deploy_source(&source).unwrap();
        let id = rt.start("chain").unwrap();
        for i in 0..n / 2 {
            rt.fire(id, &format!("s{i}")).unwrap();
        }
        let snap = rt.snapshot();
        group.bench_with_input(BenchmarkId::from_parameter(n), &snap, |b, snap| {
            b.iter(|| Runtime::restore(snap).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
