//! A hierarchical timer wheel: millions of pending timers, O(1) arm
//! and cancel, expirations in due order.
//!
//! Six levels of 64 slots each, with level `l` spanning ticks of
//! `2^(6l)` ms — level 0 resolves milliseconds, level 1 ~64 ms, level
//! 2 ~4 s, level 3 ~4.4 min, level 4 ~4.7 h, and level 5 ~12.7 days
//! per slot (dues past the top level's ~2.2-year horizon park in its
//! farthest slot and re-cascade). An entry is filed at the level
//! spanning its remaining distance (`level = hsb(due - now) / 6`), the
//! coarsest level whose slot is still unambiguous before the clock can
//! wrap past it — the **cascade invariant**: when the clock enters a
//! level-`l` slot, every entry in it has come within `2^(6l)` ms of
//! its due, so re-filing sends it strictly downward and each entry
//! cascades at most once per level.
//!
//! * **Arm** computes a level and slot with two shifts and pushes onto
//!   the slot's vector — O(1), no allocation beyond the slab.
//! * **Cancel** bumps the entry's generation and frees the slab index
//!   — O(1) *lazy deletion*: the `(index, generation)` pair left in
//!   the slot no longer matches and is skipped when the slot drains,
//!   and a reused index can never be confused with its previous
//!   tenant.
//! * **Advance** jumps boundary to boundary using per-level occupancy
//!   bitmaps (one `u64` per level), so an idle wheel advances a year
//!   in a few dozen probes — cost tracks *occupied* slots crossed and
//!   entries moved, not elapsed time.
//!
//! The wheel is a pure data structure (no threads, no wall clock): the
//! runtime owns the logical clock and drives [`TimerWheel::advance_to`]
//! explicitly, which is what makes expiry deterministic under test and
//! byte-identical across a recovered fleet and its never-crashed
//! oracle.

/// Number of levels; level `l` has granularity `2^(6l)` ms.
const LEVELS: usize = 6;
/// log2(slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Mask for a slot index.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;

/// Handle returned by [`TimerWheel::arm`]; spends on cancel or expiry.
/// The generation makes tokens single-use even though slab indices are
/// recycled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerToken {
    index: u32,
    generation: u32,
}

struct Entry<T> {
    due: u64,
    /// Arm order; ties on `due` expire in arm order.
    seq: u64,
    /// Bumped on fire and cancel; slot references and tokens carrying
    /// an older generation are dead.
    generation: u32,
    /// `None` once fired or cancelled (the slab hole awaiting reuse).
    data: Option<T>,
}

/// The wheel. `T` is the per-timer payload handed back on expiry.
pub struct TimerWheel<T> {
    /// `slots[level][slot]` holds `(slab index, generation)` pairs in
    /// insertion order; stale pairs are skipped on drain.
    slots: Vec<Vec<Vec<(u32, u32)>>>,
    /// Bit `s` of `occupancy[level]` set iff `slots[level][s]` is
    /// non-empty (may be stale-set by lazily cancelled entries, never
    /// stale-clear).
    occupancy: [u64; LEVELS],
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    now: u64,
    next_seq: u64,
    pending: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> TimerWheel<T> {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel at clock 0.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupancy: [0; LEVELS],
            entries: Vec::new(),
            free: Vec::new(),
            now: 0,
            next_seq: 0,
            pending: 0,
        }
    }

    /// The wheel's current clock, in ms.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Live (armed, not yet fired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True when no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// The level and slot an entry fireable at `at` files under, given
    /// the current clock: the level spanning the remaining *distance*
    /// (`hsb(at - now) / 6`), under which the slot's coarse index is at
    /// most 64 ahead of the clock — always a boundary the advance loop
    /// still visits before that slot index recurs. `at` must be
    /// strictly greater than `now` — the loop only visits future
    /// boundaries, so already-due entries are filed at `now + 1` by the
    /// caller.
    fn place(&self, at: u64) -> (usize, usize) {
        debug_assert!(at > self.now);
        let delta = at - self.now;
        let level = ((63 - delta.leading_zeros()) / SLOT_BITS) as usize;
        if level < LEVELS {
            (
                level,
                ((at >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize,
            )
        } else {
            // Beyond the top level's horizon: park in the farthest
            // future slot — its boundary (`now + 63·2^30` at the
            // latest) is strictly before any due at distance `≥ 2^36`,
            // so a parked entry always re-cascades, never fires late.
            let top = LEVELS - 1;
            let coarse_now = self.now >> (SLOT_BITS * top as u32);
            (top, ((coarse_now + SLOT_MASK) & SLOT_MASK) as usize)
        }
    }

    fn file(&mut self, index: u32) {
        let e = &self.entries[index as usize];
        let (due, generation) = (e.due, e.generation);
        let (level, slot) = self.place(due.max(self.now + 1));
        self.slots[level][slot].push((index, generation));
        self.occupancy[level] |= 1 << slot;
    }

    /// Arms a timer due at absolute clock `due` (immediately due if not
    /// in the future — it fires on the next advance). O(1).
    pub fn arm(&mut self, due: u64, data: T) -> TimerToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        let index = match self.free.pop() {
            Some(i) => {
                let e = &mut self.entries[i as usize];
                e.due = due;
                e.seq = seq;
                e.data = Some(data);
                i
            }
            None => {
                self.entries.push(Entry {
                    due,
                    seq,
                    generation: 0,
                    data: Some(data),
                });
                (self.entries.len() - 1) as u32
            }
        };
        self.pending += 1;
        self.file(index);
        TimerToken {
            index,
            generation: self.entries[index as usize].generation,
        }
    }

    /// Cancels a pending timer, returning its payload; `None` if the
    /// token was already spent (fired or cancelled). O(1): the slot
    /// reference is abandoned in place and skipped when its slot
    /// drains.
    pub fn cancel(&mut self, token: TimerToken) -> Option<T> {
        let e = self.entries.get_mut(token.index as usize)?;
        if e.generation != token.generation {
            return None;
        }
        let data = e.data.take()?;
        e.generation = e.generation.wrapping_add(1);
        self.pending -= 1;
        self.free.push(token.index);
        Some(data)
    }

    /// The earliest pending due, as a lower bound usable for sleeping:
    /// exact for entries within 64 ms of the clock, otherwise the
    /// start of the coarse slot the entry currently waits in.
    pub fn next_due(&self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let coarse_now = self.now >> shift;
            let occ = self.occupancy[level];
            if occ == 0 {
                continue;
            }
            for d in 1..=SLOTS as u64 {
                let slot = ((coarse_now + d) & SLOT_MASK) as usize;
                if occ & (1 << slot) != 0 {
                    // Confirm liveness lazily (the bit may outlive its
                    // cancelled entries).
                    let live = self.slots[level][slot]
                        .iter()
                        .any(|&(i, g)| self.entries[i as usize].generation == g);
                    if live {
                        let t = ((coarse_now + d) << shift).max(self.now);
                        best = Some(best.map_or(t, |b: u64| b.min(t)));
                        break;
                    }
                }
            }
        }
        best
    }

    /// Advances the clock to `to`, draining every boundary crossed:
    /// entries within reach fire, coarser slots cascade downward.
    /// Returns the fired `(due, payload)` pairs in `(due, arm order)`
    /// order. Cost is proportional to occupied slots crossed plus
    /// entries moved — an empty wheel advances any distance in
    /// O(levels).
    pub fn advance_to(&mut self, to: u64) -> Vec<(u64, T)> {
        let mut fired: Vec<(u64, u64, T)> = Vec::new();
        while self.now < to {
            let Some(boundary) = self.next_boundary(to) else {
                self.now = to;
                break;
            };
            self.now = boundary;
            // Drain every level whose slot boundary this is, coarsest
            // first so cascading entries re-file into finer slots the
            // clock has not yet passed.
            for level in (0..LEVELS).rev() {
                let shift = SLOT_BITS * level as u32;
                if level > 0 && self.now & ((1 << shift) - 1) != 0 {
                    continue; // not a boundary of this level
                }
                let slot = ((self.now >> shift) & SLOT_MASK) as usize;
                if self.occupancy[level] & (1 << slot) == 0 {
                    continue;
                }
                let drained = std::mem::take(&mut self.slots[level][slot]);
                self.occupancy[level] &= !(1 << slot);
                for (index, generation) in drained {
                    let e = &mut self.entries[index as usize];
                    if e.generation != generation {
                        continue; // lazily cancelled (or index reused)
                    }
                    if e.due <= self.now {
                        let data = e.data.take().expect("live entry has data");
                        e.generation = e.generation.wrapping_add(1);
                        self.pending -= 1;
                        self.free.push(index);
                        fired.push((e.due, e.seq, data));
                    } else {
                        self.file(index); // cascade downward
                    }
                }
            }
        }
        fired.sort_by_key(|a| (a.0, a.1));
        fired
            .into_iter()
            .map(|(due, _, data)| (due, data))
            .collect()
    }

    /// The earliest slot boundary in `(now, to]` that could hold work,
    /// or `None` when no occupied slot intervenes.
    fn next_boundary(&self, to: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let occ = self.occupancy[level];
            if occ == 0 {
                continue;
            }
            let coarse_now = self.now >> shift;
            for d in 1..=SLOTS as u64 {
                let coarse = coarse_now + d;
                let slot = (coarse & SLOT_MASK) as usize;
                let t = coarse << shift;
                if t > to {
                    break;
                }
                if occ & (1 << slot) != 0 {
                    best = Some(best.map_or(t, |b: u64| b.min(t)));
                    break;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn fires_in_due_order_with_arm_order_ties() {
        let mut w = TimerWheel::new();
        w.arm(50, "b");
        w.arm(10, "a");
        w.arm(50, "c");
        assert_eq!(w.len(), 3);
        let fired = w.advance_to(100);
        assert_eq!(
            fired,
            vec![(10, "a"), (50, "b"), (50, "c")],
            "due order, ties in arm order"
        );
        assert!(w.is_empty());
        assert_eq!(w.now(), 100);
    }

    #[test]
    fn advance_stops_exactly_at_the_target() {
        let mut w = TimerWheel::new();
        w.arm(100, "later");
        assert!(w.advance_to(99).is_empty());
        assert_eq!(w.now(), 99);
        assert_eq!(w.advance_to(100), vec![(100, "later")]);
    }

    #[test]
    fn cancel_is_single_use_and_generation_checked() {
        let mut w = TimerWheel::new();
        let t1 = w.arm(10, 1u32);
        let t2 = w.arm(20, 2u32);
        assert_eq!(w.cancel(t1), Some(1));
        assert_eq!(w.cancel(t1), None, "spent token");
        assert_eq!(w.len(), 1);
        // The freed index is reused; the stale token must not cancel
        // the new tenant, and the new tenant must fire exactly once at
        // its own due even though the old slot still references the
        // index.
        let t3 = w.arm(30, 3u32);
        assert_eq!(w.cancel(t1), None, "stale generation");
        assert_eq!(w.advance_to(100), vec![(20, 2), (30, 3)]);
        assert_eq!(w.cancel(t3), None, "fired tokens are spent");
        let _ = t2;
    }

    #[test]
    fn past_due_arms_fire_on_the_next_advance() {
        let mut w = TimerWheel::new();
        w.advance_to(1_000);
        w.arm(5, "ancient");
        w.arm(1_000, "now");
        assert_eq!(w.advance_to(1_001), vec![(5, "ancient"), (1_000, "now")]);
    }

    #[test]
    fn cascades_preserve_exact_dues_across_levels() {
        let mut w = TimerWheel::new();
        // One due per level's range, plus one past the top horizon.
        let dues = [
            3u64,
            200,
            5_000,
            300_000,
            20_000_000,
            1 << 37,
            (1 << 37) + 1,
        ];
        for &d in &dues {
            w.arm(d, d);
        }
        for &d in &dues {
            // Stop just short: nothing may fire early.
            let before = w.advance_to(d - 1);
            assert!(before.is_empty(), "early fire before {d}: {before:?}");
            assert_eq!(w.advance_to(d), vec![(d, d)], "exact fire at {d}");
        }
        assert!(w.is_empty());
    }

    #[test]
    fn next_due_is_a_usable_lower_bound() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_due(), None);
        w.arm(7, ());
        assert_eq!(w.next_due(), Some(7), "near entries are exact");
        let mut w = TimerWheel::new();
        let t = w.arm(100_000, ());
        let bound = w.next_due().expect("pending");
        assert!(bound <= 100_000 && bound > 0, "{bound}");
        w.cancel(t);
        assert_eq!(w.next_due(), None, "cancelled entries do not bound");
    }

    #[test]
    fn idle_advance_is_cheap_and_exact_over_a_year() {
        let mut w = TimerWheel::new();
        let year = 365 * 24 * 3_600_000u64;
        w.arm(year, "anniversary");
        // If this looped per-ms it would never finish in test time.
        assert!(w.advance_to(year - 1).is_empty());
        assert_eq!(w.advance_to(year + 1), vec![(year, "anniversary")]);
    }

    #[test]
    fn randomized_scatter_matches_a_naive_oracle() {
        // Deterministic xorshift; no external crates.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut w = TimerWheel::new();
        let mut oracle: Vec<(u64, u64)> = Vec::new(); // (due, id)
        let mut tokens = Vec::new();
        for id in 0..5_000u64 {
            let due = rng() % 2_000_000;
            tokens.push((w.arm(due, id), id));
            oracle.push((due, id));
        }
        // Cancel a third; the freed slab indices get reused by a second
        // wave armed mid-stream.
        let mut cancelled = BTreeSet::new();
        for i in (0..tokens.len()).step_by(3) {
            assert!(w.cancel(tokens[i].0).is_some());
            cancelled.insert(tokens[i].1);
        }
        for id in 5_000..6_000u64 {
            let due = rng() % 2_000_000;
            w.arm(due, id);
            oracle.push((due, id));
        }
        // Advance in random hops; the wheel must fire exactly the
        // still-armed dues in order.
        let mut clock = 0;
        let mut fired: Vec<(u64, u64)> = Vec::new();
        while clock < 2_100_000 {
            clock += rng() % 70_000 + 1;
            fired.extend(w.advance_to(clock));
        }
        let mut expected: Vec<(u64, u64)> = oracle
            .into_iter()
            .filter(|(_, id)| !cancelled.contains(id))
            .collect();
        expected.sort_by_key(|&(due, id)| (due, id)); // id == arm order
        assert_eq!(fired.len(), expected.len());
        assert_eq!(fired, expected);
        assert!(w.is_empty());
    }
}
