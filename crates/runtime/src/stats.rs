//! Monte-Carlo simulation over the allowed schedules of a deployed
//! workflow.
//!
//! The compiled goal is a "compressed explicit representation of all
//! allowed executions" (paper, §4); sampling it with the randomized
//! scheduling policy gives process-analytics answers without enumerating
//! the whole (possibly exponential) execution space: how often does each
//! activity run, how long are the paths, which activities always/never
//! co-occur in practice.

use ctr::symbol::Symbol;
use ctr_engine::scheduler::{Program, Scheduler};
use std::collections::BTreeMap;

/// Aggregate statistics over sampled schedules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Simulation {
    /// Number of schedules sampled.
    pub runs: usize,
    /// Schedules that ran to completion (all of them, for excised
    /// programs).
    pub completed: usize,
    /// How many sampled schedules each event occurred in.
    pub event_frequency: BTreeMap<Symbol, usize>,
    /// Shortest complete path length observed.
    pub min_len: usize,
    /// Longest complete path length observed.
    pub max_len: usize,
    /// Total events across all completed paths (for the mean).
    pub total_len: usize,
    /// Distinct complete traces observed.
    pub distinct_traces: usize,
}

impl Simulation {
    /// Mean complete-path length.
    pub fn mean_len(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_len as f64 / self.completed as f64
        }
    }

    /// Fraction of sampled schedules containing `event`.
    pub fn frequency(&self, event: Symbol) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            *self.event_frequency.get(&event).unwrap_or(&0) as f64 / self.completed as f64
        }
    }
}

/// Samples `runs` randomized schedules of `program` (seeds
/// `seed, seed+1, …`) and aggregates.
pub fn simulate(program: &Program, runs: usize, seed: u64) -> Simulation {
    let mut sim = Simulation {
        runs,
        completed: 0,
        event_frequency: BTreeMap::new(),
        min_len: usize::MAX,
        max_len: 0,
        total_len: 0,
        distinct_traces: 0,
    };
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..runs {
        let Some(trace) = Scheduler::new(program).run_random(seed.wrapping_add(i as u64)) else {
            continue;
        };
        let names: Vec<Symbol> = trace.iter().filter_map(ctr::term::Atom::as_event).collect();
        sim.completed += 1;
        sim.min_len = sim.min_len.min(names.len());
        sim.max_len = sim.max_len.max(names.len());
        sim.total_len += names.len();
        let mut once: Vec<Symbol> = names.clone();
        once.sort_unstable();
        once.dedup();
        for e in once {
            *sim.event_frequency.entry(e).or_insert(0) += 1;
        }
        if seen.insert(names) {
            sim.distinct_traces += 1;
        }
    }
    if sim.completed == 0 {
        sim.min_len = 0;
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::constraints::Constraint;
    use ctr::goal::{conc, or, seq, Goal};
    use ctr::sym;

    fn program(goal: &Goal, constraints: &[Constraint]) -> Program {
        let compiled = ctr::analysis::compile(goal, constraints).unwrap();
        Program::compile(&compiled.goal).unwrap()
    }

    #[test]
    fn simulation_counts_and_lengths() {
        let goal = seq(vec![
            Goal::atom("a"),
            or(vec![Goal::atom("b"), Goal::atom("c")]),
        ]);
        let p = program(&goal, &[]);
        let sim = simulate(&p, 200, 7);
        assert_eq!(sim.runs, 200);
        assert_eq!(sim.completed, 200);
        assert_eq!((sim.min_len, sim.max_len), (2, 2));
        assert!((sim.mean_len() - 2.0).abs() < f64::EPSILON);
        assert_eq!(sim.frequency(sym("a")), 1.0, "a is mandatory");
        let b = sim.frequency(sym("b"));
        let c = sim.frequency(sym("c"));
        assert!(
            (b + c - 1.0).abs() < f64::EPSILON,
            "exactly one branch per run"
        );
        assert!(
            b > 0.2 && c > 0.2,
            "both branches get sampled (b={b}, c={c})"
        );
        assert_eq!(sim.distinct_traces, 2);
    }

    #[test]
    fn constraints_shift_frequencies() {
        let goal = conc(vec![
            or(vec![Goal::atom("x"), Goal::atom("y")]),
            Goal::atom("z"),
        ]);
        // must(x) kills the y branch entirely.
        let p = program(&goal, &[Constraint::must("x")]);
        let sim = simulate(&p, 100, 3);
        assert_eq!(sim.frequency(sym("x")), 1.0);
        assert_eq!(sim.frequency(sym("y")), 0.0);
    }

    #[test]
    fn distinct_traces_bounded_by_interleavings() {
        let p = program(&conc(vec![Goal::atom("p"), Goal::atom("q")]), &[]);
        let sim = simulate(&p, 300, 11);
        assert_eq!(sim.distinct_traces, 2);
    }

    #[test]
    fn zero_runs_is_well_defined() {
        let p = program(&Goal::atom("a"), &[]);
        let sim = simulate(&p, 0, 0);
        assert_eq!(sim.completed, 0);
        assert_eq!(sim.mean_len(), 0.0);
        assert_eq!(sim.min_len, 0);
    }
}
