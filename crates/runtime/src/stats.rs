//! Monte-Carlo simulation over the allowed schedules of a deployed
//! workflow, plus the runtime's observability counters.
//!
//! The compiled goal is a "compressed explicit representation of all
//! allowed executions" (paper, §4); sampling it with the randomized
//! scheduling policy gives process-analytics answers without enumerating
//! the whole (possibly exponential) execution space: how often does each
//! activity run, how long are the paths, which activities always/never
//! co-occur in practice.
//!
//! The **store counters** also surface here: [`Runtime::store_stats`] /
//! [`SharedRuntime::store_stats`] expose the attached backend's
//! [`StoreStats`] — appends, journal events per append (group sizes),
//! commit fsyncs (with rotation and checkpoint syncs attributed
//! separately), group-size and fsync-latency histograms, compactions,
//! and recovered/torn byte counts — which is how the `durability/*`
//! benches and the CLI `recover` verb report what the log actually did.

use crate::{Runtime, SharedRuntime};
use ctr::apply::Parallelism;
use ctr::symbol::Symbol;
use ctr_engine::scheduler::{Program, Scheduler};
use ctr_store::StoreStats;
use std::collections::{BTreeMap, BTreeSet};

impl Runtime {
    /// Traffic counters of the attached store ([`StoreStats`]), or
    /// `None` when the runtime is purely in-memory.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }
}

impl SharedRuntime {
    /// See [`Runtime::store_stats`].
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store().map(|s| s.stats())
    }
}

/// Aggregate statistics over sampled schedules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Simulation {
    /// Number of schedules sampled.
    pub runs: usize,
    /// Schedules that ran to completion (all of them, for excised
    /// programs).
    pub completed: usize,
    /// How many **completed** schedules each event occurred in.
    /// Deadlocked samples contribute to [`Simulation::runs`] only —
    /// their partial prefixes are not counted here.
    pub event_frequency: BTreeMap<Symbol, usize>,
    /// Shortest complete path length observed.
    pub min_len: usize,
    /// Longest complete path length observed.
    pub max_len: usize,
    /// Total events across all completed paths (for the mean).
    pub total_len: usize,
    /// Distinct complete traces observed.
    pub distinct_traces: usize,
}

impl Simulation {
    /// Mean complete-path length.
    pub fn mean_len(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_len as f64 / self.completed as f64
        }
    }

    /// Fraction of **completed** schedules containing `event`.
    ///
    /// The denominator is [`Simulation::completed`], not
    /// [`Simulation::runs`]: a deadlocked sample has no complete trace,
    /// so "how often does this activity run" is only meaningful over the
    /// schedules that actually finished (for excised programs the two
    /// coincide — excision guarantees completion). Multiply by
    /// [`Simulation::completion_rate`] for the per-*sample* rate.
    pub fn frequency(&self, event: Symbol) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            *self.event_frequency.get(&event).unwrap_or(&0) as f64 / self.completed as f64
        }
    }

    /// Fraction of sampled schedules that ran to completion; 1.0 for
    /// excised programs, lower when raw (un-excised) programs deadlock
    /// under some resolutions.
    pub fn completion_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.completed as f64 / self.runs as f64
        }
    }
}

/// Mergeable aggregate over a contiguous range of sampled runs. Each run
/// is an independent sample keyed only by its global index (seed
/// `seed + i`), so partials computed on different threads merge into
/// exactly the sequential result.
#[derive(Default)]
struct Partial {
    completed: usize,
    event_frequency: BTreeMap<Symbol, usize>,
    min_len: usize,
    max_len: usize,
    total_len: usize,
    /// Full trace set — distinct-trace counting needs global dedup, so
    /// partials keep the traces and the merge takes the union.
    traces: BTreeSet<Vec<Symbol>>,
}

/// Samples the run indices `lo..hi`.
fn sample_range(program: &Program, lo: usize, hi: usize, seed: u64) -> Partial {
    let mut part = Partial {
        min_len: usize::MAX,
        ..Partial::default()
    };
    for i in lo..hi {
        let Some(trace) = Scheduler::new(program).run_random(seed.wrapping_add(i as u64)) else {
            continue;
        };
        let names: Vec<Symbol> = trace.iter().filter_map(ctr::term::Atom::as_event).collect();
        part.completed += 1;
        part.min_len = part.min_len.min(names.len());
        part.max_len = part.max_len.max(names.len());
        part.total_len += names.len();
        let mut once: Vec<Symbol> = names.clone();
        once.sort_unstable();
        once.dedup();
        for e in once {
            *part.event_frequency.entry(e).or_insert(0) += 1;
        }
        part.traces.insert(names);
    }
    part
}

/// Joins a sampler worker, re-raising any panic **with its payload and
/// the worker's run range attached** — a bare `.unwrap()` on a `join`
/// error would panic on the opaque `Box<dyn Any>` (a "double panic" that
/// names neither the message nor the culprit runs), making fleet-sized
/// simulations undebuggable.
fn join_attributed<T>(handle: std::thread::ScopedJoinHandle<'_, T>, (lo, hi): (usize, usize)) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_owned());
            panic!("simulation worker for runs {lo}..{hi} panicked: {msg}");
        }
    }
}

/// Samples `runs` randomized schedules of `program` (seeds
/// `seed, seed+1, …`) and aggregates. Uses [`Parallelism::Auto`]; see
/// [`simulate_par`] to pin the mode.
pub fn simulate(program: &Program, runs: usize, seed: u64) -> Simulation {
    simulate_par(program, runs, seed, Parallelism::Auto)
}

/// [`simulate`] with an explicit [`Parallelism`] mode — the same knob the
/// compiler's fan-out uses. Runs are independent samples, so they
/// partition across worker threads and the partial aggregates merge;
/// every mode produces the **identical** `Simulation` (each run's seed
/// depends only on its global index, and all merge operations are
/// commutative sums/min/max/unions).
pub fn simulate_par(program: &Program, runs: usize, seed: u64, par: Parallelism) -> Simulation {
    let workers = if par.fan_out(program.len(), runs) {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(runs)
    } else {
        1
    };

    let partials: Vec<Partial> = if workers <= 1 {
        vec![sample_range(program, 0, runs, seed)]
    } else {
        // Contiguous index ranges, remainder spread over the first few
        // workers; coverage is exactly 0..runs.
        let base = runs / workers;
        let extra = runs % workers;
        std::thread::scope(|scope| {
            let mut lo = 0;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let hi = lo + base + usize::from(w < extra);
                    let range = (lo, hi);
                    lo = hi;
                    (
                        range,
                        scope.spawn(move || sample_range(program, range.0, range.1, seed)),
                    )
                })
                .collect();
            handles
                .into_iter()
                .map(|(range, h)| join_attributed(h, range))
                .collect()
        })
    };

    let mut sim = Simulation {
        runs,
        completed: 0,
        event_frequency: BTreeMap::new(),
        min_len: usize::MAX,
        max_len: 0,
        total_len: 0,
        distinct_traces: 0,
    };
    let mut seen = BTreeSet::new();
    for part in partials {
        sim.completed += part.completed;
        sim.min_len = sim.min_len.min(part.min_len);
        sim.max_len = sim.max_len.max(part.max_len);
        sim.total_len += part.total_len;
        for (e, n) in part.event_frequency {
            *sim.event_frequency.entry(e).or_insert(0) += n;
        }
        seen.extend(part.traces);
    }
    sim.distinct_traces = seen.len();
    if sim.completed == 0 {
        sim.min_len = 0;
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::constraints::Constraint;
    use ctr::goal::{conc, or, seq, Goal};
    use ctr::sym;

    fn program(goal: &Goal, constraints: &[Constraint]) -> Program {
        let compiled = ctr::analysis::compile(goal, constraints).unwrap();
        Program::compile(&compiled.goal).unwrap()
    }

    #[test]
    fn simulation_counts_and_lengths() {
        let goal = seq(vec![
            Goal::atom("a"),
            or(vec![Goal::atom("b"), Goal::atom("c")]),
        ]);
        let p = program(&goal, &[]);
        let sim = simulate(&p, 200, 7);
        assert_eq!(sim.runs, 200);
        assert_eq!(sim.completed, 200);
        assert_eq!((sim.min_len, sim.max_len), (2, 2));
        assert!((sim.mean_len() - 2.0).abs() < f64::EPSILON);
        assert_eq!(sim.frequency(sym("a")), 1.0, "a is mandatory");
        let b = sim.frequency(sym("b"));
        let c = sim.frequency(sym("c"));
        assert!(
            (b + c - 1.0).abs() < f64::EPSILON,
            "exactly one branch per run"
        );
        assert!(
            b > 0.2 && c > 0.2,
            "both branches get sampled (b={b}, c={c})"
        );
        assert_eq!(sim.distinct_traces, 2);
    }

    #[test]
    fn constraints_shift_frequencies() {
        let goal = conc(vec![
            or(vec![Goal::atom("x"), Goal::atom("y")]),
            Goal::atom("z"),
        ]);
        // must(x) kills the y branch entirely.
        let p = program(&goal, &[Constraint::must("x")]);
        let sim = simulate(&p, 100, 3);
        assert_eq!(sim.frequency(sym("x")), 1.0);
        assert_eq!(sim.frequency(sym("y")), 0.0);
    }

    #[test]
    fn distinct_traces_bounded_by_interleavings() {
        let p = program(&conc(vec![Goal::atom("p"), Goal::atom("q")]), &[]);
        let sim = simulate(&p, 300, 11);
        assert_eq!(sim.distinct_traces, 2);
    }

    #[test]
    fn parallel_modes_produce_identical_simulations() {
        // Runs are independent samples seeded by global index, so the
        // threaded fan-out must be invisible in the aggregate.
        let goal = seq(vec![
            conc(vec![Goal::atom("p"), Goal::atom("q")]),
            or(vec![Goal::atom("b"), Goal::atom("c")]),
        ]);
        let p = program(&goal, &[]);
        let sequential = simulate_par(&p, 300, 42, Parallelism::Never);
        let threaded = simulate_par(&p, 300, 42, Parallelism::Always);
        let auto = simulate_par(&p, 300, 42, Parallelism::Auto);
        assert_eq!(sequential, threaded);
        assert_eq!(sequential, auto);
        assert!(sequential.distinct_traces >= 2);
    }

    #[test]
    fn frequency_uses_completed_runs_as_denominator() {
        // A raw (un-excised) program whose second branch deadlocks: pick
        // `c`, then block forever on a receive no one sends. Compiled
        // directly — `ctr::analysis::compile` would excise the knot away.
        use ctr::goal::{Channel, Goal};
        let goal = or(vec![
            seq(vec![Goal::atom("a"), Goal::atom("b")]),
            seq(vec![Goal::atom("c"), Goal::Receive(Channel(0))]),
        ]);
        let p = Program::compile(&goal).unwrap();
        let sim = simulate(&p, 200, 13);
        assert_eq!(sim.runs, 200);
        assert!(
            sim.completed > 0 && sim.completed < sim.runs,
            "both outcomes sampled (completed={})",
            sim.completed
        );
        // `a` appears in every *completed* schedule: frequency is exactly
        // 1.0 — the documented completed-only denominator. Under a
        // runs-denominator it would equal the completion rate instead.
        assert_eq!(sim.frequency(sym("a")), 1.0);
        // `c` only occurs on the deadlocking branch, whose partial
        // prefixes are never counted.
        assert_eq!(sim.frequency(sym("c")), 0.0);
        let rate = sim.completion_rate();
        assert!(rate > 0.0 && rate < 1.0);
        assert_eq!(rate, sim.completed as f64 / sim.runs as f64);
    }

    #[test]
    fn worker_panics_are_attributed_with_range_context() {
        let caught = std::panic::catch_unwind(|| {
            std::thread::scope(|scope| {
                let handle = scope.spawn(|| -> () { panic!("sampler exploded") });
                join_attributed(handle, (64, 128))
            })
        })
        .unwrap_err();
        let msg = caught
            .downcast_ref::<String>()
            .expect("attributed panic carries a String payload");
        assert_eq!(
            msg,
            "simulation worker for runs 64..128 panicked: sampler exploded"
        );
    }

    #[test]
    fn zero_runs_is_well_defined() {
        let p = program(&Goal::atom("a"), &[]);
        let sim = simulate(&p, 0, 0);
        assert_eq!(sim.completed, 0);
        assert_eq!(sim.mean_len(), 0.0);
        assert_eq!(sim.min_len, 0);
    }
}
