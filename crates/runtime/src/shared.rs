//! Thread-safe handles over the runtime, for services where many clients
//! report events concurrently.
//!
//! [`SharedRuntime`] is **sharded**: a fleet of independent workflow
//! instances is exactly the workload the paper's compiled scheduler makes
//! cheap per instance, so the service layer must not re-serialize it
//! behind one lock. The state splits three ways:
//!
//! * a **read-mostly deployment registry** behind an [`RwLock`] — deploys
//!   are rare, `start`/`fire` are hot, and readers only clone an `Arc`;
//! * an **instance table striped across [`SHARD_COUNT`] shards** keyed by
//!   `InstanceId`, each shard a small map behind its own [`Mutex`];
//! * **per-instance state behind its own lock**, so two clients firing
//!   events on *different* instances never contend.
//!
//! The single-instance atomicity guarantee of the coarse-lock design is
//! preserved *per instance*: eligibility check and journal append happen
//! under that instance's lock, so of two clients racing to fire
//! mutually-exclusive branch events exactly one wins and the loser gets
//! [`RuntimeError::NotEligible`] with the post-commit alternatives.
//!
//! ## Lock order
//!
//! `registry < shard[0] < … < shard[SHARD_COUNT−1] < instance locks <
//! timer state`. The timer wheel and logical clock live behind one
//! dedicated mutex at the *bottom* of the order: every fire path may
//! take it briefly while holding an instance lock (derived disarms),
//! while [`SharedRuntime::advance`] pops the expired batch under the
//! timer lock **alone** and only then takes instance locks one at a
//! time — so expiry never holds the wheel against the fleet.
//! Operations on one instance take its shard lock only to resolve the id
//! (releasing it before the instance lock); [`SharedRuntime::snapshot`]
//! takes *every* shard lock in ascending index order and then every
//! instance lock, freezing the fleet for a consistent point-in-time cut.
//! No path ever waits on the registry or a shard lock while holding an
//! instance lock, so the order is acyclic. (This matters for more than
//! tidiness: `RwLock` readers can queue behind a waiting writer, so a
//! registry read taken under an instance lock could deadlock against
//! `snapshot` + a pending deploy. `invalidate` therefore resolves the
//! deployment *between* instance-lock critical sections.) Snapshot output is **byte-identical** to
//! [`Runtime::snapshot`] on the same logical state — both serialize
//! through the same per-deployment/per-instance code.
//!
//! With a store attached, the store's own stripe locks sit strictly
//! *below* every runtime lock (they are only ever taken inside a
//! [`Store`] call, never around one), and each durable **control-record
//! append rides inside the lock that publishes its effect**: deploy
//! records under the registry write lock, start records under the
//! destination shard lock, event/complete records under the instance
//! lock. That discipline is what makes [`SharedRuntime::checkpoint`]'s
//! freeze a true cut — holding the registry read lock, every shard
//! lock, and every instance lock excludes every in-flight control
//! append, so no record can take a sequence number below the checkpoint
//! cut while the state it describes is still invisible to the snapshot.
//! (Without it, a start could append its record, the checkpoint could
//! truncate that record behind a snapshot that misses the instance, and
//! recovery would fail on the instance's surviving event records.)
//!
//! ## Durability policy and blocking
//!
//! With a [`crate::WalStore`] attached, [`crate::Durability`] (set via
//! [`crate::WalOptions`]) decides how long those in-lock appends block:
//!
//! * `Strict` — every append blocks its instance lock for a full
//!   private fsync; appends on the same log stripe serialize.
//! * `Coalesced` — an append still blocks until its record is durable,
//!   but concurrent appends on a stripe share **one** fsync (the
//!   store's commit pipeline): the instance lock is held across the
//!   group wait, other instances proceed, and total fsync pressure
//!   drops with concurrency. This is the recommended policy for
//!   multi-client services.
//! * `Periodic` — appends return at staging time, so instance locks
//!   are barely held; a crash may lose up to one sync interval of
//!   *acknowledged* records (always a contiguous per-stripe suffix).
//!   Only for deployments that accept that loss window.
//!
//! The checkpoint cut is durability-safe in every mode: the store
//! quiesces its commit pipeline (flushing staged frames) before
//! choosing the cut, and the fleet freeze above excludes in-flight
//! appends, so acknowledged-but-unsynced records can never be
//! truncated behind a snapshot that misses them.
//!
//! ## Poisoning
//!
//! All locks recover from poisoning (`PoisonError::into_inner`): a panic
//! mid-operation either completed its journal append or left it
//! untouched, so the inner state is always valid. The symbol interner
//! follows the same discipline (see `ctr::symbol`).
//!
//! [`CoarseRuntime`] is the retired single-`Mutex` design, kept (and kept
//! correct) as the measured baseline for the `fleet_mt` benchmark family
//! in `BENCH_exec.json`.

use crate::render_snapshot;
use crate::wheel::TimerWheel;
use crate::TimerFired;
use crate::{Deployment, FireOutcome, Instance, InstanceId, InstanceStatus, Runtime, RuntimeError};
use ctr::symbol::Symbol;
use ctr_store::Store;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// Number of stripes in the instance table. Ids are assigned round-robin
/// (`id % SHARD_COUNT`), so load spreads evenly; a power of two keeps the
/// modulo cheap. Contention on a shard lock is only the map *lookup* —
/// the per-event work happens under the instance's own lock.
pub const SHARD_COUNT: usize = 16;

/// Locks a mutex, recovering from poisoning (see module docs).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

type InstanceCell = Arc<Mutex<Instance>>;

/// The fleet's timer wheel and logical clock, one mutex at the bottom
/// of the lock order (see module docs). Entries key back to their
/// instances; each instance's `timers` list holds the mirror entry and
/// is the per-instance source of truth — a wheel pop whose instance
/// entry is already gone is a stale expiry and is skipped.
#[derive(Default)]
struct TimerState {
    wheel: TimerWheel<(InstanceId, Symbol)>,
    clock_ms: u64,
}

/// One stripe of the instance table.
#[derive(Default)]
struct Shard {
    instances: Mutex<BTreeMap<InstanceId, InstanceCell>>,
}

struct Inner {
    /// Read-mostly: `start` takes a read lock and clones an `Arc`;
    /// only deployment takes the write lock.
    registry: RwLock<BTreeMap<String, Arc<Deployment>>>,
    shards: [Shard; SHARD_COUNT],
    next_id: AtomicU64,
    /// Replay work counter, aggregated across instances (see
    /// [`Runtime::replayed_steps`]).
    replayed: AtomicU64,
    /// Durability backend shared by every shard; immutable for the life
    /// of the handle, so reads need no lock. The WAL backend stripes
    /// its segments by the same `id % SHARD_COUNT` rule as the instance
    /// table, so two instances on different shards never contend on a
    /// log stripe either.
    pub(crate) store: Option<Arc<dyn Store>>,
    /// Timer wheel + logical clock; strictly below every other lock.
    timers: Mutex<TimerState>,
}

/// A cloneable, `Send + Sync`, sharded handle to a workflow runtime.
///
/// See the module docs for the locking model. The API mirrors
/// [`Runtime`]; every method is `&self`.
#[derive(Clone, Default)]
pub struct SharedRuntime {
    inner: Arc<Inner>,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            registry: RwLock::new(BTreeMap::new()),
            shards: std::array::from_fn(|_| Shard::default()),
            next_id: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            store: None,
            timers: Mutex::new(TimerState::default()),
        }
    }
}

impl Inner {
    fn shard(&self, id: InstanceId) -> &Shard {
        &self.shards[(id % SHARD_COUNT as u64) as usize]
    }

    /// Resolves an id to its instance cell. Holds the shard lock only for
    /// the lookup: callers then lock the instance itself, so operations
    /// on different instances proceed in parallel.
    fn instance(&self, id: InstanceId) -> Result<InstanceCell, RuntimeError> {
        lock(&self.shard(id).instances)
            .get(&id)
            .cloned()
            .ok_or(RuntimeError::UnknownInstance(id))
    }

    fn deployment(&self, workflow: &str) -> Result<Arc<Deployment>, RuntimeError> {
        self.registry
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(workflow)
            .cloned()
            .ok_or_else(|| RuntimeError::UnknownWorkflow(workflow.to_owned()))
    }
}

impl SharedRuntime {
    /// Wraps an empty runtime.
    pub fn new() -> SharedRuntime {
        SharedRuntime::default()
    }

    /// Adopts the state of an existing single-threaded runtime —
    /// including its attached store, if any — distributing its
    /// instances over the shards.
    pub fn from_runtime(rt: Runtime) -> SharedRuntime {
        let shared = SharedRuntime {
            inner: Arc::new(Inner {
                store: rt.store,
                // The wheel moves over whole: instance timer tokens
                // stay valid against its slab.
                timers: Mutex::new(TimerState {
                    wheel: rt.wheel,
                    clock_ms: rt.clock_ms,
                }),
                ..Inner::default()
            }),
        };
        *shared
            .inner
            .registry
            .write()
            .unwrap_or_else(PoisonError::into_inner) = rt.deployments;
        for (id, instance) in rt.instances {
            lock(&shared.inner.shard(id).instances).insert(id, Arc::new(Mutex::new(instance)));
        }
        shared.inner.next_id.store(rt.next_id, Ordering::Relaxed);
        shared.inner.replayed.store(rt.replayed, Ordering::Relaxed);
        shared
    }

    /// See [`Runtime::restore`]: replay-validates the snapshot, then
    /// shards the result.
    pub fn restore(snapshot: &str) -> Result<SharedRuntime, RuntimeError> {
        Ok(SharedRuntime::from_runtime(Runtime::restore(snapshot)?))
    }

    /// An empty sharded runtime persisting through `store`; see
    /// [`Runtime::with_store`].
    pub fn with_store(store: Arc<dyn Store>) -> SharedRuntime {
        SharedRuntime::from_runtime(Runtime::with_store(store))
    }

    /// Recovers a sharded runtime from `store` — see [`Runtime::open`]
    /// — then distributes the recovered fleet over the shards with the
    /// store attached.
    pub fn open(store: Arc<dyn Store>) -> Result<SharedRuntime, RuntimeError> {
        Ok(SharedRuntime::from_runtime(Runtime::open(store)?))
    }

    /// See [`Runtime::deploy_source`]. Parsing and compilation run
    /// outside any lock; the registry write lock covers the durable
    /// deploy append *and* the insert, so the record is durable before
    /// the registry exposes the deployment — and a fleet frozen under
    /// the registry read lock ([`SharedRuntime::checkpoint`]) has no
    /// in-flight deploy whose record could predate the checkpoint cut
    /// yet miss its snapshot.
    pub fn deploy_source(&self, source: &str) -> Result<String, RuntimeError> {
        let mut staging = Runtime::new();
        let name = staging.deploy_source(source)?;
        let deployment = staging.deployments.remove(&name).expect("just deployed");
        let mut registry = self
            .inner
            .registry
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        self.persist_deploy(&name, &deployment)?;
        registry.insert(name.clone(), deployment);
        Ok(name)
    }

    /// See [`Runtime::deploy_compiled`]. Compilation runs outside any
    /// lock; append + insert share the registry write lock (see
    /// [`SharedRuntime::deploy_source`]). Running instances keep the
    /// program they started with.
    pub fn deploy_compiled(
        &self,
        name: &str,
        compiled: ctr::goal::Goal,
    ) -> Result<(), RuntimeError> {
        let mut staging = Runtime::new();
        staging.deploy_compiled(name, compiled)?;
        let deployment = staging.deployments.remove(name).expect("just deployed");
        let mut registry = self
            .inner
            .registry
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        self.persist_deploy(name, &deployment)?;
        registry.insert(name.to_owned(), deployment);
        Ok(())
    }

    /// Write-ahead append of a deploy record (no-op without a store).
    /// The staging runtime above is store-less on purpose: the record is
    /// appended exactly once, here — and always with the registry write
    /// lock held, see [`SharedRuntime::deploy_source`].
    fn persist_deploy(&self, name: &str, deployment: &Deployment) -> Result<(), RuntimeError> {
        if let Some(store) = &self.inner.store {
            store
                .append(&ctr_store::Record::Deploy {
                    name: name.to_owned(),
                    goal: deployment.rendered.clone(),
                })
                .map_err(|e| RuntimeError::Store(e.to_string()))?;
        }
        Ok(())
    }

    /// Deployed workflow names.
    pub fn workflows(&self) -> Vec<String> {
        self.inner
            .registry
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    /// See [`Runtime::start`]. Takes the registry read lock (shared with
    /// other starters) and one shard lock covering the durable start
    /// append *and* the insert. With a store attached the start record
    /// is durable before the instance becomes visible — so any event
    /// subsequently fired on it lands in the log strictly after its
    /// start (same stripe, later sequence number) — and, because the
    /// append happens *under the destination shard's lock*, a fleet
    /// frozen by [`SharedRuntime::checkpoint`] (which holds every shard
    /// lock) has no in-flight start whose record could predate the
    /// checkpoint cut yet miss its snapshot. A failed persist burns the
    /// allocated id, which is harmless: ids only ever need to be unique
    /// and monotonic.
    /// Timers declared by the deployment are armed with arm-before-
    /// visible discipline: the [`ctr_store::Record::TimerArm`] record
    /// (absolute dues off one clock read) precedes the start record,
    /// and the instance cell is **locked before it is published** — no
    /// client, and no concurrent [`SharedRuntime::advance`], can
    /// observe the instance until its wheel entries and its own timer
    /// list agree.
    pub fn start(&self, workflow: &str) -> Result<InstanceId, RuntimeError> {
        let deployment = self.inner.deployment(workflow)?;
        let instance = Instance::new(workflow.to_owned(), Arc::clone(&deployment.program));
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(Mutex::new(instance));
        let mut inst = lock(&cell);
        // One clock read fixes the absolute dues: the durable record
        // and the in-memory arms below must agree byte for byte even if
        // an advance moves the clock in between.
        let dues: Vec<u64> = if deployment.timers.is_empty() {
            Vec::new()
        } else {
            let clock = lock(&self.inner.timers).clock_ms;
            deployment
                .timers
                .iter()
                .map(|t| clock.saturating_add(t.delay_ms))
                .collect()
        };
        let mut shard = lock(&self.inner.shard(id).instances);
        if let Some(store) = &self.inner.store {
            if !deployment.timers.is_empty() {
                store
                    .append(&ctr_store::Record::TimerArm {
                        instance: id,
                        timers: deployment
                            .timers
                            .iter()
                            .zip(&dues)
                            .map(|(t, &due)| (t.tick.as_str().to_owned(), due))
                            .collect(),
                    })
                    .map_err(|e| RuntimeError::Store(e.to_string()))?;
            }
            store
                .append(&ctr_store::Record::Start {
                    instance: id,
                    workflow: workflow.to_owned(),
                })
                .map_err(|e| RuntimeError::Store(e.to_string()))?;
        }
        shard.insert(id, Arc::clone(&cell));
        drop(shard);
        if !deployment.timers.is_empty() {
            let mut ts = lock(&self.inner.timers);
            for (t, &due) in deployment.timers.iter().zip(&dues) {
                let token = ts.wheel.arm(due, (id, t.tick));
                inst.arm_timer(t.tick, due, t.base, token);
            }
        }
        Ok(id)
    }

    /// Running and completed instance ids, ascending.
    pub fn instances(&self) -> Vec<InstanceId> {
        let mut ids: Vec<InstanceId> = Vec::new();
        for shard in &self.inner.shards {
            ids.extend(lock(&shard.instances).keys().copied());
        }
        ids.sort_unstable();
        ids
    }

    /// Cancels the wheel entries of timers settled by the journal
    /// suffix `committed_from..` (or by completion). Called with the
    /// instance lock held — the timer lock sits below it in the order.
    fn settle(&self, inst: &mut Instance, committed_from: usize) {
        let dead = inst.settled_tokens(committed_from);
        if dead.is_empty() {
            return;
        }
        let mut ts = lock(&self.inner.timers);
        for token in dead {
            ts.wheel.cancel(token);
        }
    }

    /// See [`Runtime::fire`] — atomic with respect to other clients *of
    /// this instance*; clients of other instances proceed concurrently.
    pub fn fire(&self, id: InstanceId, event: &str) -> Result<InstanceStatus, RuntimeError> {
        let cell = self.inner.instance(id)?;
        let mut inst = lock(&cell);
        let before = inst.journal.len();
        let result = inst.fire(id, event, self.inner.store.as_deref());
        if result.is_ok() {
            self.settle(&mut inst, before);
        }
        result
    }

    /// See [`Runtime::fire_batch`]: fires a batch of events against one
    /// instance under a **single** shard-lock resolution and a **single**
    /// instance-lock acquisition — the whole batch is one atomic section
    /// with respect to other clients of this instance. Partial-failure
    /// semantics are those of [`Runtime::fire_batch`] (stop at first
    /// failure, committed prefix journaled, suffix
    /// [`FireOutcome::Skipped`]).
    pub fn fire_batch<S: AsRef<str>>(
        &self,
        id: InstanceId,
        events: &[S],
    ) -> Result<Vec<FireOutcome>, RuntimeError> {
        let cell = self.inner.instance(id)?;
        let mut inst = lock(&cell);
        let before = inst.journal.len();
        let outcomes = inst.fire_batch(id, events, self.inner.store.as_deref());
        if outcomes.is_ok() {
            self.settle(&mut inst, before);
        }
        outcomes
    }

    /// Fires a mixed batch of `(instance, event)` pairs, amortizing lock
    /// traffic across the fleet: the batch is grouped by shard (one
    /// shard-lock acquisition per *referenced shard* to resolve ids, not
    /// one per event), then by instance (one instance-lock acquisition
    /// per referenced instance, processed in first-appearance order).
    ///
    /// Within each instance its events fire in input order with
    /// [`Runtime::fire_batch`] semantics: first failure stops *that
    /// instance's* sub-batch (committed prefix journaled, rest
    /// [`FireOutcome::Skipped`]) while other instances' sub-batches
    /// proceed independently. An unknown instance id rejects its first
    /// event with [`RuntimeError::UnknownInstance`] and skips the rest.
    /// Returns one [`FireOutcome`] per input pair, in input positions.
    ///
    /// Lock order is preserved: shard locks are taken one at a time in
    /// ascending index order (each released before the next), and
    /// instance locks one at a time after all shard locks are released.
    pub fn fire_many<S: AsRef<str>>(&self, batch: &[(InstanceId, S)]) -> Vec<FireOutcome> {
        // Fast path: a batch whose instance ids are pairwise distinct
        // (the common interleaved-arrival shape — one event per instance
        // per batch) needs none of the grouping bookkeeping below. Its
        // per-instance runs are singletons, so per-instance order is
        // input order, and a plain `fire` per pair under the same
        // shard-by-shard resolution gives identical outcomes while
        // skipping the order/group/cell maps whose allocations used to
        // make these batches *trail* sequential fires.
        let mut sorted_ids: Vec<InstanceId> = batch.iter().map(|(id, _)| *id).collect();
        sorted_ids.sort_unstable();
        if sorted_ids.windows(2).all(|w| w[0] != w[1]) {
            return self.fire_many_singletons(batch);
        }
        drop(sorted_ids);
        // Group event positions per instance, keeping first-appearance
        // order so cross-instance progress stays deterministic.
        let mut order: Vec<InstanceId> = Vec::new();
        let mut groups: BTreeMap<InstanceId, Vec<usize>> = BTreeMap::new();
        for (i, (id, _)) in batch.iter().enumerate() {
            groups
                .entry(*id)
                .or_insert_with(|| {
                    order.push(*id);
                    Vec::new()
                })
                .push(i);
        }
        // Resolve cells shard by shard: one lock per referenced shard.
        let mut by_shard: [Vec<InstanceId>; SHARD_COUNT] = std::array::from_fn(|_| Vec::new());
        for &id in groups.keys() {
            by_shard[(id % SHARD_COUNT as u64) as usize].push(id);
        }
        let mut cells: BTreeMap<InstanceId, Option<InstanceCell>> = BTreeMap::new();
        for (s, ids) in by_shard.iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let shard = lock(&self.inner.shards[s].instances);
            for &id in ids {
                cells.insert(id, shard.get(&id).cloned());
            }
        }
        // Fire per instance: one instance-lock acquisition each, events
        // spliced back to their input positions.
        let mut outcomes: Vec<Option<FireOutcome>> = vec![None; batch.len()];
        let mut events: Vec<&str> = Vec::new();
        for id in order {
            let positions = &groups[&id];
            match &cells[&id] {
                None => {
                    let mut first = true;
                    for &i in positions {
                        outcomes[i] = Some(if std::mem::take(&mut first) {
                            FireOutcome::Rejected(RuntimeError::UnknownInstance(id))
                        } else {
                            FireOutcome::Skipped
                        });
                    }
                }
                Some(cell) => {
                    events.clear();
                    events.extend(positions.iter().map(|&i| batch[i].1.as_ref()));
                    let mut inst = lock(cell);
                    let before = inst.journal.len();
                    let result = inst.fire_batch(id, &events, self.inner.store.as_deref());
                    if result.is_ok() {
                        self.settle(&mut inst, before);
                    }
                    drop(inst);
                    match result {
                        Ok(per) => {
                            for (&i, outcome) in positions.iter().zip(per) {
                                outcomes[i] = Some(outcome);
                            }
                        }
                        // The rollback itself failed (unreplayable
                        // journal): surface it on this instance's first
                        // position, skip the rest, and leave the other
                        // instances' sub-batches to proceed.
                        Err(e) => {
                            let mut first = Some(e);
                            for &i in positions {
                                outcomes[i] = Some(match first.take() {
                                    Some(e) => FireOutcome::Rejected(e),
                                    None => FireOutcome::Skipped,
                                });
                            }
                        }
                    }
                }
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every position resolved"))
            .collect()
    }

    /// [`SharedRuntime::fire_many`] for batches with pairwise-distinct
    /// ids: shard-by-shard cell resolution (ascending, one lock per
    /// referenced shard — same lock order as the general path), then one
    /// plain `fire` per pair in input order. No grouping maps: the only
    /// allocations are the flat position/cell vectors.
    fn fire_many_singletons<S: AsRef<str>>(&self, batch: &[(InstanceId, S)]) -> Vec<FireOutcome> {
        let mut by_shard: [Vec<usize>; SHARD_COUNT] = std::array::from_fn(|_| Vec::new());
        for (i, (id, _)) in batch.iter().enumerate() {
            by_shard[(id % SHARD_COUNT as u64) as usize].push(i);
        }
        let mut cells: Vec<Option<InstanceCell>> = Vec::new();
        cells.resize_with(batch.len(), || None);
        for (s, positions) in by_shard.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let shard = lock(&self.inner.shards[s].instances);
            for &i in positions {
                cells[i] = shard.get(&batch[i].0).cloned();
            }
        }
        batch
            .iter()
            .zip(&cells)
            .map(|((id, event), cell)| match cell {
                None => FireOutcome::Rejected(RuntimeError::UnknownInstance(*id)),
                Some(cell) => {
                    let mut inst = lock(cell);
                    let before = inst.journal.len();
                    match inst.fire(*id, event.as_ref(), self.inner.store.as_deref()) {
                        Ok(status) => {
                            self.settle(&mut inst, before);
                            FireOutcome::Fired(status)
                        }
                        Err(e) => FireOutcome::Rejected(e),
                    }
                }
            })
            .collect()
    }

    /// Fires a burst of independent *runs* — `(instance, events)`
    /// sub-batches — amortizing lock and durability traffic while
    /// preserving each run's identity: runs against the same instance
    /// execute in input order under **one** instance-lock acquisition,
    /// each with [`Runtime::fire_batch`] semantics (its failure stops
    /// that run only, never a later run), and all of an instance's
    /// committed events from the burst reach the store through **one**
    /// append — one WAL group commit per instance per burst.
    ///
    /// This is the service batching primitive: a connection that reads
    /// several pipelined `fire`/`fire_batch` requests submits them as
    /// one burst and gets per-request outcomes identical to submitting
    /// them one by one — batching amortizes, it never merges requests
    /// into a wider failure domain (except store-append failure, where
    /// the burst is one commit unit and nothing is acknowledged).
    ///
    /// Returns one outcome vector per input run, in input positions. An
    /// unknown instance rejects the first event of its first run and
    /// skips everything else addressed to it. Lock order is the
    /// [`SharedRuntime::fire_many`] order: shard locks one at a time
    /// ascending, then instance locks one at a time.
    pub fn fire_runs<S: AsRef<str>>(&self, runs: &[(InstanceId, &[S])]) -> Vec<Vec<FireOutcome>> {
        // Group run positions per instance, first-appearance order.
        let mut order: Vec<InstanceId> = Vec::new();
        let mut groups: BTreeMap<InstanceId, Vec<usize>> = BTreeMap::new();
        for (i, (id, _)) in runs.iter().enumerate() {
            groups
                .entry(*id)
                .or_insert_with(|| {
                    order.push(*id);
                    Vec::new()
                })
                .push(i);
        }
        // Resolve cells shard by shard, ascending.
        let mut by_shard: [Vec<InstanceId>; SHARD_COUNT] = std::array::from_fn(|_| Vec::new());
        for &id in groups.keys() {
            by_shard[(id % SHARD_COUNT as u64) as usize].push(id);
        }
        let mut cells: BTreeMap<InstanceId, Option<InstanceCell>> = BTreeMap::new();
        for (s, ids) in by_shard.iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let shard = lock(&self.inner.shards[s].instances);
            for &id in ids {
                cells.insert(id, shard.get(&id).cloned());
            }
        }
        let mut outcomes: Vec<Option<Vec<FireOutcome>>> = Vec::new();
        outcomes.resize_with(runs.len(), || None);
        for id in order {
            let positions = &groups[&id];
            match &cells[&id] {
                None => {
                    // Each run is a separate logical request: every one
                    // rejects its first event, exactly as back-to-back
                    // submissions against the unknown id would.
                    for &i in positions {
                        let events = runs[i].1;
                        let mut run = Vec::with_capacity(events.len());
                        if !events.is_empty() {
                            run.push(FireOutcome::Rejected(RuntimeError::UnknownInstance(id)));
                        }
                        run.resize(events.len(), FireOutcome::Skipped);
                        outcomes[i] = Some(run);
                    }
                }
                Some(cell) => {
                    let instance_runs: Vec<&[S]> = positions.iter().map(|&i| runs[i].1).collect();
                    let mut inst = lock(cell);
                    let before = inst.journal.len();
                    let result = inst.fire_runs(id, &instance_runs, self.inner.store.as_deref());
                    if result.is_ok() {
                        self.settle(&mut inst, before);
                    }
                    drop(inst);
                    match result {
                        Ok(per_run) => {
                            for (&i, run) in positions.iter().zip(per_run) {
                                outcomes[i] = Some(run);
                            }
                        }
                        // Rollback itself failed (unreplayable journal):
                        // surface it on the first event of the first
                        // run, skip everything else for this instance.
                        Err(e) => {
                            let mut first = Some(e);
                            for &i in positions {
                                let events = runs[i].1;
                                let mut run = Vec::with_capacity(events.len());
                                if !events.is_empty() {
                                    if let Some(e) = first.take() {
                                        run.push(FireOutcome::Rejected(e));
                                    }
                                }
                                run.resize(events.len(), FireOutcome::Skipped);
                                outcomes[i] = Some(run);
                            }
                        }
                    }
                }
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every run resolved"))
            .collect()
    }

    // --- Timers -------------------------------------------------------------

    /// See [`Runtime::clock_ms`].
    pub fn clock_ms(&self) -> u64 {
        lock(&self.inner.timers).clock_ms
    }

    /// See [`Runtime::pending_timers`] — reads only the instance's own
    /// timer list, under its lock.
    pub fn pending_timers(&self, id: InstanceId) -> Result<Vec<(String, u64)>, RuntimeError> {
        let cell = self.inner.instance(id)?;
        let inst = lock(&cell);
        let mut out: Vec<(String, u64)> = inst
            .timers
            .iter()
            .map(|t| (t.tick.as_str().to_owned(), t.due))
            .collect();
        out.sort();
        Ok(out)
    }

    /// See [`Runtime::pending_timer_count`].
    pub fn pending_timer_count(&self) -> usize {
        lock(&self.inner.timers).wheel.len()
    }

    /// See [`Runtime::next_timer_due`].
    pub fn next_timer_due(&self) -> Option<u64> {
        lock(&self.inner.timers).wheel.next_due()
    }

    /// See [`Runtime::advance`] — same deterministic `(due, instance,
    /// tick)` expiry order and write-ahead discipline. The expired
    /// batch is popped (and the clock moved) under the timer lock
    /// alone; each expiry then fires under its own instance lock, so a
    /// fleet-wide advance never serializes unrelated client fires. A
    /// timer a client disarmed between pop and fire is skipped — the
    /// instance's own list is the source of truth, and `take_timer`
    /// under the instance lock makes each expiry exactly-once.
    pub fn advance(&self, to_ms: u64) -> Result<Vec<(InstanceId, String)>, RuntimeError> {
        let mut due_now = {
            let mut ts = lock(&self.inner.timers);
            let batch = ts.wheel.advance_to(to_ms);
            ts.clock_ms = ts.clock_ms.max(to_ms);
            batch
        };
        due_now.sort_by(|a, b| (a.0, a.1 .0, a.1 .1.as_str()).cmp(&(b.0, b.1 .0, b.1 .1.as_str())));
        let mut out = Vec::new();
        for i in 0..due_now.len() {
            let (due, (id, tick)) = due_now[i];
            let Ok(cell) = self.inner.instance(id) else {
                continue;
            };
            let mut inst = lock(&cell);
            let Some(armed) = inst.take_timer(tick) else {
                continue; // disarmed concurrently, or earlier in this batch
            };
            let before = inst.journal.len();
            match inst.fire_timer(id, tick, due, self.inner.store.as_deref()) {
                Ok(TimerFired::Fired) => {
                    out.push((id, tick.as_str().to_owned()));
                    self.settle(&mut inst, before);
                }
                Ok(TimerFired::Vacuous) => {}
                Err(e) => {
                    // Re-arm the failed expiry and the rest of the
                    // popped batch (their wheel entries are gone and
                    // their instance tokens dead); a later advance
                    // retries exactly the unfired tail.
                    {
                        let mut ts = lock(&self.inner.timers);
                        let token = ts.wheel.arm(armed.due, (id, tick));
                        inst.arm_timer(tick, armed.due, armed.base, token);
                    }
                    drop(inst);
                    for &(_, (id2, tick2)) in &due_now[i + 1..] {
                        let Ok(cell2) = self.inner.instance(id2) else {
                            continue;
                        };
                        let mut inst2 = lock(&cell2);
                        if let Some(armed2) = inst2.take_timer(tick2) {
                            let mut ts = lock(&self.inner.timers);
                            let token = ts.wheel.arm(armed2.due, (id2, tick2));
                            inst2.arm_timer(tick2, armed2.due, armed2.base, token);
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// See [`Runtime::cancel_timer`] — the write-ahead
    /// [`ctr_store::Record::TimerCancel`] append rides under the
    /// instance lock, so a checkpoint freeze excludes it like any other
    /// control record.
    pub fn cancel_timer(&self, id: InstanceId, event: &str) -> Result<(), RuntimeError> {
        let cell = self.inner.instance(id)?;
        let mut inst = lock(&cell);
        let Some(tick) =
            Symbol::try_get(event).filter(|s| inst.timers.iter().any(|t| t.tick == *s))
        else {
            return Err(RuntimeError::UnknownTimer {
                instance: id,
                event: event.to_owned(),
            });
        };
        if let Some(store) = &self.inner.store {
            store
                .append(&ctr_store::Record::TimerCancel {
                    instance: id,
                    event: event.to_owned(),
                })
                .map_err(|e| RuntimeError::Store(e.to_string()))?;
        }
        let armed = inst.take_timer(tick).expect("checked pending above");
        lock(&self.inner.timers).wheel.cancel(armed.token);
        Ok(())
    }

    /// See [`Runtime::eligible`]. The answer is a snapshot: another
    /// client may commit a branch before you act on it — `fire` remains
    /// the arbiter.
    pub fn eligible(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
        let cell = self.inner.instance(id)?;
        let names = lock(&cell).eligible_names();
        Ok(names)
    }

    /// See [`Runtime::eligible_symbols`] — the allocation-free probe for
    /// hot polling loops.
    pub fn eligible_symbols(&self, id: InstanceId) -> Result<Vec<Symbol>, RuntimeError> {
        let cell = self.inner.instance(id)?;
        let events = lock(&cell).eligible_symbols();
        Ok(events)
    }

    /// See [`Runtime::journal`].
    pub fn journal(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
        let cell = self.inner.instance(id)?;
        let journal = lock(&cell).journal_names();
        Ok(journal)
    }

    /// See [`Runtime::status`].
    pub fn status(&self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
        let cell = self.inner.instance(id)?;
        let status = lock(&cell).status;
        Ok(status)
    }

    /// See [`Runtime::is_complete`].
    pub fn is_complete(&self, id: InstanceId) -> Result<bool, RuntimeError> {
        Ok(self.status(id)? == InstanceStatus::Completed)
    }

    /// See [`Runtime::try_complete`].
    pub fn try_complete(&self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
        let cell = self.inner.instance(id)?;
        let mut inst = lock(&cell);
        let status = inst.try_complete(id, self.inner.store.as_deref());
        if matches!(status, Ok(InstanceStatus::Completed)) {
            let len = inst.journal.len();
            self.settle(&mut inst, len);
        }
        status
    }

    /// See [`Runtime::enact`]. The deployment `Arc` is resolved under a
    /// brief registry read lock; the enactment itself — which may run for
    /// as long as the slowest handler chain — holds **no** runtime locks,
    /// so concurrent deploys, fires, and snapshots proceed untouched.
    pub fn enact(
        &self,
        workflow: &str,
        enactor: &crate::Enactor,
    ) -> Result<crate::EnactReport, RuntimeError> {
        let deployment = self.inner.deployment(workflow)?;
        Ok(enactor.run_report(&deployment.program))
    }

    /// See [`Runtime::invalidate`] — rebuilds one instance's cursor by
    /// replay, under that instance's lock.
    ///
    /// The registry lookup happens *between* two instance-lock critical
    /// sections, never while the instance lock is held — taking the
    /// registry lock inside an instance lock would invert the documented
    /// lock order and deadlock against `snapshot` + a queued deploy (a
    /// waiting writer can block new readers). The workflow name is
    /// immutable for the life of an instance, so the two-step read is not
    /// a TOCTOU; events fired by other clients in the gap are simply part
    /// of the journal the rebuild replays.
    pub fn invalidate(&self, id: InstanceId) -> Result<(), RuntimeError> {
        let cell = self.inner.instance(id)?;
        let workflow = lock(&cell).workflow.clone();
        let deployment = self.inner.deployment(&workflow)?;
        let replayed = lock(&cell).rebuild_cursor(Arc::clone(&deployment.program))?;
        self.inner.replayed.fetch_add(replayed, Ordering::Relaxed);
        Ok(())
    }

    /// See [`Runtime::replayed_steps`].
    pub fn replayed_steps(&self) -> u64 {
        self.inner.replayed.load(Ordering::Relaxed)
    }

    /// A consistent point-in-time snapshot, byte-identical to
    /// [`Runtime::snapshot`] on the same state.
    ///
    /// Takes the registry read lock, then every shard lock in ascending
    /// index order, then every instance lock — the fleet is frozen while
    /// the text is built, so the snapshot is an atomic cut: it contains
    /// exactly the fires that committed before the cut, instance by
    /// instance, and always restores.
    pub fn snapshot(&self) -> String {
        self.frozen_snapshot(|snapshot| snapshot)
    }

    /// Compacts the attached store behind a consistent cut: freezes the
    /// fleet exactly like [`SharedRuntime::snapshot`], and hands the
    /// snapshot to [`ctr_store::Store::checkpoint`] **while the freeze
    /// is still held** — so no fire can slip between the snapshot and
    /// the log truncation and be lost to both. Errors if no store is
    /// attached.
    pub fn checkpoint(&self) -> Result<(), RuntimeError> {
        let store = self.inner.store.clone().ok_or_else(|| {
            RuntimeError::Store("no store attached to checkpoint into".to_owned())
        })?;
        self.frozen_snapshot(|snapshot| {
            store
                .checkpoint(&snapshot)
                .map_err(|e| RuntimeError::Store(e.to_string()))
        })
    }

    /// The attached store, if any (crate-internal: `stats.rs` surfaces
    /// its counters as [`crate::StoreStats`]).
    pub(crate) fn store(&self) -> Option<&Arc<dyn Store>> {
        self.inner.store.as_ref()
    }

    /// Freezes the fleet (registry read lock, every shard lock in
    /// ascending index order, then every instance lock), renders the
    /// snapshot text, and runs `consume` on it *before* releasing
    /// anything — the shared underpinning of [`SharedRuntime::snapshot`]
    /// and [`SharedRuntime::checkpoint`].
    fn frozen_snapshot<R>(&self, consume: impl FnOnce(String) -> R) -> R {
        let registry = self
            .inner
            .registry
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let shard_guards: Vec<MutexGuard<'_, BTreeMap<InstanceId, InstanceCell>>> = self
            .inner
            .shards
            .iter()
            .map(|s| lock(&s.instances))
            .collect();
        let mut instance_guards: Vec<(InstanceId, MutexGuard<'_, Instance>)> = Vec::new();
        for shard in &shard_guards {
            for (&id, cell) in shard.iter() {
                instance_guards.push((id, lock(cell)));
            }
        }
        // Ids interleave across shards (round-robin); the output orders
        // them globally, exactly like the BTreeMap iteration in
        // `Runtime::snapshot`.
        instance_guards.sort_unstable_by_key(|(id, _)| *id);

        let mut out = String::new();
        render_snapshot(
            registry.iter().map(|(n, d)| (n, &**d)),
            instance_guards.iter().map(|(id, guard)| (*id, &**guard)),
            &mut out,
        );
        consume(out)
    }
}

/// The retired coarse-lock handle: one `Mutex` around the whole
/// [`Runtime`], so every client serializes even across independent
/// instances.
///
/// Kept as the measured baseline for the `fleet_mt/*` records in
/// `BENCH_exec.json` — the sharded [`SharedRuntime`] must beat this on
/// multi-threaded fleets, and the margin is pinned there per commit. Not
/// deprecated for single-client embedding, but services should use
/// [`SharedRuntime`].
#[derive(Clone, Default)]
pub struct CoarseRuntime {
    inner: Arc<Mutex<Runtime>>,
}

impl CoarseRuntime {
    /// Wraps an empty runtime.
    pub fn new() -> CoarseRuntime {
        CoarseRuntime::default()
    }

    /// Wraps an existing runtime.
    pub fn from_runtime(rt: Runtime) -> CoarseRuntime {
        CoarseRuntime {
            inner: Arc::new(Mutex::new(rt)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Runtime> {
        lock(&self.inner)
    }

    /// See [`Runtime::deploy_source`].
    pub fn deploy_source(&self, source: &str) -> Result<String, RuntimeError> {
        self.lock().deploy_source(source)
    }

    /// See [`Runtime::deploy_compiled`].
    pub fn deploy_compiled(
        &self,
        name: &str,
        compiled: ctr::goal::Goal,
    ) -> Result<(), RuntimeError> {
        self.lock().deploy_compiled(name, compiled)
    }

    /// See [`Runtime::start`].
    pub fn start(&self, workflow: &str) -> Result<InstanceId, RuntimeError> {
        self.lock().start(workflow)
    }

    /// See [`Runtime::fire`] — atomic with respect to other clients.
    pub fn fire(&self, id: InstanceId, event: &str) -> Result<InstanceStatus, RuntimeError> {
        self.lock().fire(id, event)
    }

    /// See [`Runtime::eligible`].
    pub fn eligible(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
        self.lock().eligible(id)
    }

    /// See [`Runtime::journal`].
    pub fn journal(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
        self.lock().journal(id)
    }

    /// See [`Runtime::status`].
    pub fn status(&self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
        self.lock().status(id)
    }

    /// See [`Runtime::try_complete`].
    pub fn try_complete(&self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
        self.lock().try_complete(id)
    }

    /// See [`Runtime::snapshot`].
    pub fn snapshot(&self) -> String {
        self.lock().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAY: &str = "workflow pay { graph invoice * (approve + reject) * file; }";

    fn shared_pay() -> SharedRuntime {
        let rt = SharedRuntime::new();
        rt.deploy_source(PAY).unwrap();
        rt
    }

    #[test]
    fn handles_are_send_sync_and_cloneable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<SharedRuntime>();
        assert_send_sync::<CoarseRuntime>();
    }

    #[test]
    fn racing_exclusive_branches_serialize_per_instance() {
        // Two threads race to decide the same instance; exactly one of
        // approve/reject lands, every time — the per-instance lock is
        // the arbiter now, not a global one.
        for round in 0..20 {
            let rt = shared_pay();
            let id = rt.start("pay").unwrap();
            rt.fire(id, "invoice").unwrap();

            let (a, b) = (rt.clone(), rt.clone());
            let ta = std::thread::spawn(move || a.fire(id, "approve").is_ok());
            let tb = std::thread::spawn(move || b.fire(id, "reject").is_ok());
            let (ra, rb) = (ta.join().unwrap(), tb.join().unwrap());
            assert!(
                ra ^ rb,
                "round {round}: exactly one decision wins (a={ra}, b={rb})"
            );

            let journal = rt.journal(id).unwrap();
            assert_eq!(journal.len(), 2);
            assert!(journal[1] == "approve" || journal[1] == "reject");
        }
    }

    #[test]
    fn loser_gets_post_commit_alternatives() {
        let rt = shared_pay();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        rt.fire(id, "approve").unwrap();
        let err = rt.fire(id, "reject").unwrap_err();
        let RuntimeError::NotEligible { event, eligible } = err else {
            panic!("expected NotEligible");
        };
        assert_eq!(event, "reject");
        assert_eq!(eligible, vec!["file".to_owned()], "post-commit view");
    }

    #[test]
    fn concurrent_instances_do_not_interfere() {
        let rt = shared_pay();
        let ids: Vec<_> = (0..32).map(|_| rt.start("pay").unwrap()).collect();
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let rt = rt.clone();
                std::thread::spawn(move || {
                    rt.fire(id, "invoice").unwrap();
                    rt.fire(id, "approve").unwrap();
                    rt.fire(id, "file").unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for id in ids {
            assert_eq!(rt.status(id).unwrap(), InstanceStatus::Completed);
        }
    }

    #[test]
    fn instances_stripe_across_shards() {
        let rt = shared_pay();
        let ids: Vec<_> = (0..SHARD_COUNT as u64 * 2)
            .map(|_| rt.start("pay").unwrap())
            .collect();
        // Sequential ids land round-robin: every shard holds exactly two.
        for shard in &rt.inner.shards {
            assert_eq!(lock(&shard.instances).len(), 2);
        }
        assert_eq!(rt.instances(), ids);
    }

    #[test]
    fn deploy_while_firing_does_not_disturb_running_instances() {
        let rt = shared_pay();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        // Redeploy the same name with a different body mid-flight.
        rt.deploy_source("workflow pay { graph invoice * file; }")
            .unwrap();
        // The running instance still follows the program it pinned …
        assert_eq!(
            rt.eligible(id).unwrap(),
            vec!["approve".to_owned(), "reject".to_owned()]
        );
        // … and new instances follow the new deployment.
        let id2 = rt.start("pay").unwrap();
        rt.fire(id2, "invoice").unwrap();
        assert_eq!(rt.eligible(id2).unwrap(), vec!["file".to_owned()]);
    }

    #[test]
    fn enact_resolves_the_deployment_and_holds_no_locks() {
        let rt = shared_pay();
        // Handlers fire events on the *same* shared runtime while the
        // enactment is in flight: if `enact` held any runtime lock this
        // would deadlock instead of completing.
        let rt2 = rt.clone();
        let id = rt.start("pay").unwrap();
        let mut enactor = crate::Enactor::new();
        enactor.register(
            "invoice",
            Box::new(move |_| {
                rt2.fire(id, "invoice")
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }),
        );
        let report = rt.enact("pay", &enactor).unwrap();
        assert!(report.is_success());
        assert_eq!(report.completed.len(), 3);
        assert_eq!(rt.journal(id).unwrap(), vec!["invoice"]);
        assert!(matches!(
            rt.enact("ghost", &crate::Enactor::new()).unwrap_err(),
            RuntimeError::UnknownWorkflow(_)
        ));
    }

    #[test]
    fn snapshot_format_is_byte_identical_to_runtime() {
        // Build the same logical state through both front-ends; the
        // snapshot text must match byte for byte.
        let shared = shared_pay();
        let mut plain = Runtime::new();
        plain.deploy_source(PAY).unwrap();
        for _ in 0..SHARD_COUNT + 3 {
            let a = shared.start("pay").unwrap();
            let b = plain.start("pay").unwrap();
            assert_eq!(a, b);
        }
        for id in [0u64, 3, 7, 17] {
            shared.fire(id, "invoice").unwrap();
            plain.fire(id, "invoice").unwrap();
        }
        shared.fire(3, "approve").unwrap();
        plain.fire(3, "approve").unwrap();
        assert_eq!(shared.snapshot(), plain.snapshot());
    }

    #[test]
    fn snapshot_restore_round_trips_through_shards() {
        let rt = shared_pay();
        let i1 = rt.start("pay").unwrap();
        let i2 = rt.start("pay").unwrap();
        rt.fire(i1, "invoice").unwrap();
        rt.fire(i1, "approve").unwrap();
        rt.fire(i2, "invoice").unwrap();
        let restored = SharedRuntime::restore(&rt.snapshot()).unwrap();
        assert_eq!(restored.journal(i1).unwrap(), vec!["invoice", "approve"]);
        assert_eq!(
            restored.eligible(i2).unwrap(),
            vec!["approve".to_owned(), "reject".to_owned()]
        );
        // Fresh ids allocate past the restored ones.
        let i3 = restored.start("pay").unwrap();
        assert!(i3 > i2);
    }

    #[test]
    fn snapshot_under_concurrency_is_consistent() {
        let rt = shared_pay();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        let writer = {
            let rt = rt.clone();
            std::thread::spawn(move || {
                let _ = rt.fire(id, "approve");
                let _ = rt.fire(id, "file");
            })
        };
        // Snapshots taken at any point restore cleanly.
        for _ in 0..10 {
            let snap = rt.snapshot();
            Runtime::restore(&snap).expect("snapshot is internally consistent");
        }
        writer.join().unwrap();
        let final_snap = rt.snapshot();
        let restored = Runtime::restore(&final_snap).unwrap();
        assert!(restored.is_complete(id).unwrap());
    }

    #[test]
    fn invalidate_replays_and_matches_incremental_cursor() {
        let rt = shared_pay();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        rt.fire(id, "reject").unwrap();
        assert_eq!(rt.replayed_steps(), 0);
        rt.invalidate(id).unwrap();
        assert_eq!(rt.replayed_steps(), 2);
        assert_eq!(rt.eligible(id).unwrap(), vec!["file".to_owned()]);
        rt.fire(id, "file").unwrap();
        assert!(rt.is_complete(id).unwrap());
    }

    #[test]
    fn snapshot_invalidate_deploy_storm_does_not_deadlock() {
        // Regression: invalidate used to take the registry read lock
        // while holding an instance lock. With snapshot holding the
        // registry read lock while collecting instance locks and a deploy
        // writer queued (std RwLock may block new readers behind waiting
        // writers), the fleet could deadlock. Hammer all three paths
        // concurrently; completion of every thread is the assertion.
        let rt = shared_pay();
        let ids: Vec<_> = (0..8).map(|_| rt.start("pay").unwrap()).collect();
        for &id in &ids {
            rt.fire(id, "invoice").unwrap();
        }
        std::thread::scope(|scope| {
            for &id in &ids {
                let rt = rt.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        rt.invalidate(id).unwrap();
                    }
                });
            }
            let snapper = rt.clone();
            scope.spawn(move || {
                for _ in 0..50 {
                    Runtime::restore(&snapper.snapshot()).expect("consistent snapshot");
                }
            });
            let deployer = rt.clone();
            scope.spawn(move || {
                for _ in 0..50 {
                    deployer.deploy_source(PAY).unwrap();
                }
            });
        });
        for &id in &ids {
            assert_eq!(
                rt.eligible(id).unwrap(),
                vec!["approve".to_owned(), "reject".to_owned()]
            );
        }
    }

    #[test]
    fn coarse_runtime_still_works() {
        // The baseline keeps full semantics: races serialize globally.
        let rt = CoarseRuntime::new();
        rt.deploy_source(PAY).unwrap();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        let (a, b) = (rt.clone(), rt.clone());
        let ta = std::thread::spawn(move || a.fire(id, "approve").is_ok());
        let tb = std::thread::spawn(move || b.fire(id, "reject").is_ok());
        assert!(ta.join().unwrap() ^ tb.join().unwrap());
        rt.fire(id, "file").unwrap();
        assert_eq!(rt.status(id).unwrap(), InstanceStatus::Completed);
        assert_eq!(
            rt.snapshot(),
            SharedRuntime::restore(&rt.snapshot()).unwrap().snapshot()
        );
    }

    #[test]
    fn shared_fire_batch_matches_runtime_fire_batch() {
        let shared = shared_pay();
        let mut plain = Runtime::new();
        plain.deploy_source(PAY).unwrap();
        let a = shared.start("pay").unwrap();
        let b = plain.start("pay").unwrap();
        assert_eq!(a, b);
        let events = ["invoice", "reject", "reject", "file"];
        assert_eq!(
            shared.fire_batch(a, &events).unwrap(),
            plain.fire_batch(b, &events).unwrap()
        );
        assert_eq!(shared.snapshot(), plain.snapshot());
    }

    #[test]
    fn fire_many_splices_outcomes_to_input_positions() {
        let rt = shared_pay();
        let i1 = rt.start("pay").unwrap();
        let i2 = rt.start("pay").unwrap();
        let ghost = 999u64;
        // Interleave two instances and an unknown id; per-instance event
        // order is the input order regardless of interleaving.
        let batch = [
            (i1, "invoice"),
            (i2, "invoice"),
            (ghost, "invoice"),
            (i1, "approve"),
            (ghost, "file"),
            (i2, "file"), // ineligible: i2 has not decided yet
            (i2, "reject"),
            (i1, "file"),
        ];
        let outcomes = rt.fire_many(&batch);
        use FireOutcome::{Fired, Rejected, Skipped};
        use InstanceStatus::{Completed, Running};
        assert_eq!(outcomes.len(), batch.len());
        assert_eq!(outcomes[0], Fired(Running));
        assert_eq!(outcomes[1], Fired(Running));
        assert_eq!(outcomes[2], Rejected(RuntimeError::UnknownInstance(ghost)));
        assert_eq!(outcomes[3], Fired(Running));
        assert_eq!(outcomes[4], Skipped, "later event of the unknown id");
        assert!(
            matches!(&outcomes[5], Rejected(RuntimeError::NotEligible { event, .. }) if event == "file")
        );
        assert_eq!(outcomes[6], Skipped, "after i2's failure");
        assert_eq!(outcomes[7], Fired(Completed));
        // Committed prefixes landed; i2 remains decidable.
        assert_eq!(rt.journal(i1).unwrap(), vec!["invoice", "approve", "file"]);
        assert_eq!(rt.journal(i2).unwrap(), vec!["invoice"]);
        rt.fire(i2, "reject").unwrap();
        rt.fire(i2, "file").unwrap();
        assert!(rt.is_complete(i2).unwrap());
    }

    #[test]
    fn fire_many_matches_sequential_fires_across_shards() {
        // A batch spanning more instances than shards produces the same
        // fleet state as firing every pair individually.
        let many = shared_pay();
        let single = shared_pay();
        let n = SHARD_COUNT as u64 * 2 + 3;
        let mut batch: Vec<(InstanceId, &str)> = Vec::new();
        for _ in 0..n {
            let a = many.start("pay").unwrap();
            let b = single.start("pay").unwrap();
            assert_eq!(a, b);
        }
        for round in ["invoice", "approve", "file"] {
            for id in 0..n {
                batch.push((id, round));
            }
        }
        let outcomes = many.fire_many(&batch);
        for (&(id, event), outcome) in batch.iter().zip(&outcomes) {
            assert_eq!(single.fire(id, event).unwrap(), {
                let FireOutcome::Fired(status) = outcome else {
                    panic!("expected Fired, got {outcome:?}");
                };
                *status
            });
        }
        assert_eq!(many.snapshot(), single.snapshot());
    }

    #[test]
    fn fire_many_singleton_batches_match_individual_fires() {
        // Pairwise-distinct ids take the allocation-light fast path;
        // outcomes (including unknown-instance and not-eligible
        // rejections) must be exactly those of per-pair fires.
        let fast = shared_pay();
        let slow = shared_pay();
        let n = SHARD_COUNT as u64 + 5;
        for _ in 0..n {
            assert_eq!(fast.start("pay").unwrap(), slow.start("pay").unwrap());
        }
        let ghost = 999u64;
        let mut batch: Vec<(InstanceId, &str)> = (0..n).map(|id| (id, "invoice")).collect();
        batch.push((ghost, "invoice"));
        batch.push((n - 1, "file")); // duplicate id → general path
        let outcomes = fast.fire_many(&batch);
        for (&(id, event), outcome) in batch.iter().zip(&outcomes) {
            match slow.fire(id, event) {
                Ok(status) => assert_eq!(*outcome, FireOutcome::Fired(status)),
                Err(e) => assert_eq!(*outcome, FireOutcome::Rejected(e)),
            }
        }
        assert_eq!(fast.snapshot(), slow.snapshot());
        // And the genuinely-singleton version of the same batch.
        batch.pop();
        let outcomes = fast.fire_many(&batch[..]);
        assert!(
            matches!(&outcomes[..n as usize], o if o.iter().all(|o| matches!(o, FireOutcome::Rejected(RuntimeError::NotEligible { .. })))),
            "second invoice is no longer eligible anywhere"
        );
        assert_eq!(
            outcomes[n as usize],
            FireOutcome::Rejected(RuntimeError::UnknownInstance(ghost))
        );
    }

    #[test]
    fn fire_runs_matches_back_to_back_fire_batches() {
        // A burst of runs — including two runs on the same instance
        // where the first fails mid-way — must produce exactly the
        // outcomes and journals of sequential fire_batch calls.
        let burst = shared_pay();
        let seq = shared_pay();
        let a = burst.start("pay").unwrap();
        assert_eq!(a, seq.start("pay").unwrap());
        let b = burst.start("pay").unwrap();
        assert_eq!(b, seq.start("pay").unwrap());
        let runs: Vec<(InstanceId, &[&str])> = vec![
            (a, &["invoice", "file"]), // "file" ineligible: stops run 1
            (b, &["invoice"]),
            (a, &["approve", "file"]), // run 3 proceeds despite run 1's failure
            (b, &["reject", "file"]),
        ];
        let outcomes = burst.fire_runs(&runs);
        assert_eq!(outcomes.len(), runs.len());
        for ((id, events), outcome) in runs.iter().zip(&outcomes) {
            assert_eq!(outcome, &seq.fire_batch(*id, events).unwrap());
        }
        assert_eq!(burst.snapshot(), seq.snapshot());
        assert_eq!(
            burst.journal(a).unwrap(),
            vec!["invoice", "approve", "file"]
        );
        // Every run against an unknown id rejects its own first event —
        // each run is a separate logical request.
        let ghost = 999u64;
        let ghost_runs: Vec<(InstanceId, &[&str])> =
            vec![(ghost, &["invoice", "file"]), (ghost, &["approve"])];
        let outcomes = burst.fire_runs(&ghost_runs);
        assert_eq!(
            outcomes[0],
            vec![
                FireOutcome::Rejected(RuntimeError::UnknownInstance(ghost)),
                FireOutcome::Skipped
            ]
        );
        assert_eq!(
            outcomes[1],
            vec![FireOutcome::Rejected(RuntimeError::UnknownInstance(ghost))]
        );
    }

    #[test]
    fn fire_runs_appends_once_per_instance_per_burst() {
        use ctr_store::MemStore;
        let store = Arc::new(MemStore::new());
        let rt = SharedRuntime::with_store(Arc::clone(&store) as Arc<dyn Store>);
        rt.deploy_source(PAY).unwrap();
        let a = rt.start("pay").unwrap();
        let b = rt.start("pay").unwrap();
        let before = store.stats().appends;
        // Three runs on `a`, one on `b` → exactly two Events appends.
        let runs: Vec<(InstanceId, &[&str])> = vec![
            (a, &["invoice"]),
            (b, &["invoice", "approve"]),
            (a, &["approve"]),
            (a, &["file"]),
        ];
        for outcome in rt.fire_runs(&runs).into_iter().flatten() {
            assert!(matches!(outcome, FireOutcome::Fired(_)));
        }
        assert_eq!(store.stats().appends - before, 2);
        // The grouped appends replay to the same fleet.
        let recovered = SharedRuntime::open(store).unwrap();
        assert_eq!(recovered.snapshot(), rt.snapshot());
    }

    /// A store that fails every append once `fail` is set — the
    /// burst-rollback probe.
    struct FaultyStore {
        inner: ctr_store::MemStore,
        fail: std::sync::atomic::AtomicBool,
    }

    impl Store for FaultyStore {
        fn append(&self, record: &ctr_store::Record) -> Result<(), ctr_store::StoreError> {
            if self.fail.load(Ordering::Relaxed) {
                return Err(ctr_store::StoreError::Io(
                    "injected append failure".to_owned(),
                ));
            }
            self.inner.append(record)
        }
        fn replay(&self) -> Result<ctr_store::Replay, ctr_store::StoreError> {
            self.inner.replay()
        }
        fn checkpoint(&self, snapshot: &str) -> Result<(), ctr_store::StoreError> {
            self.inner.checkpoint(snapshot)
        }
        fn stats(&self) -> ctr_store::StoreStats {
            self.inner.stats()
        }
    }

    #[test]
    fn fire_runs_store_failure_rolls_back_the_whole_burst() {
        let store = Arc::new(FaultyStore {
            inner: ctr_store::MemStore::new(),
            fail: std::sync::atomic::AtomicBool::new(false),
        });
        let rt = SharedRuntime::with_store(Arc::clone(&store) as Arc<dyn Store>);
        rt.deploy_source(PAY).unwrap();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        store.fail.store(true, Ordering::Relaxed);
        let runs: Vec<(InstanceId, &[&str])> = vec![(id, &["approve"]), (id, &["file"])];
        let outcomes = rt.fire_runs(&runs);
        // Every run reports the store failure shape; nothing committed.
        assert!(matches!(
            outcomes[0][0],
            FireOutcome::Rejected(RuntimeError::Store(_))
        ));
        assert!(matches!(
            outcomes[1][0],
            FireOutcome::Rejected(RuntimeError::Store(_))
        ));
        assert_eq!(rt.journal(id).unwrap(), vec!["invoice"]);
        assert_eq!(rt.status(id).unwrap(), InstanceStatus::Running);
        // The instance stays usable once the store heals.
        store.fail.store(false, Ordering::Relaxed);
        rt.fire(id, "approve").unwrap();
        rt.fire(id, "file").unwrap();
        assert!(rt.is_complete(id).unwrap());
    }

    #[test]
    fn shared_store_survives_crash_and_recovers_sharded() {
        use ctr_store::MemStore;
        let store = Arc::new(MemStore::new());
        let snap_before;
        {
            let rt = SharedRuntime::with_store(Arc::clone(&store) as Arc<dyn Store>);
            rt.deploy_source(PAY).unwrap();
            // Span several shards.
            let ids: Vec<_> = (0..SHARD_COUNT as u64 + 3)
                .map(|_| rt.start("pay").unwrap())
                .collect();
            let batch: Vec<(InstanceId, &str)> = ids.iter().map(|&id| (id, "invoice")).collect();
            for outcome in rt.fire_many(&batch) {
                assert!(matches!(outcome, FireOutcome::Fired(_)));
            }
            rt.fire(3, "approve").unwrap();
            snap_before = rt.snapshot();
        }
        let rt = SharedRuntime::open(store).unwrap();
        assert_eq!(rt.snapshot(), snap_before);
        assert_eq!(rt.journal(3).unwrap(), vec!["invoice", "approve"]);
        let stats = rt.store_stats().expect("store stays attached");
        assert!(stats.appends > 0);
    }

    #[test]
    fn shared_checkpoint_compacts_under_the_freeze() {
        use ctr_store::{MemStore, Store as _};
        let store = Arc::new(MemStore::new());
        let rt = SharedRuntime::with_store(Arc::clone(&store) as Arc<dyn Store>);
        rt.deploy_source(PAY).unwrap();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        rt.checkpoint().unwrap();
        rt.fire(id, "approve").unwrap();
        let replay = store.replay().unwrap();
        assert!(replay.snapshot.is_some());
        assert_eq!(replay.records.len(), 1, "pre-checkpoint records truncated");
        // Concurrent fires + checkpoints never lose an event.
        let writer = {
            let rt = rt.clone();
            std::thread::spawn(move || {
                let _ = rt.fire(id, "file");
            })
        };
        for _ in 0..5 {
            rt.checkpoint().unwrap();
        }
        writer.join().unwrap();
        rt.checkpoint().unwrap();
        let recovered = SharedRuntime::open(store).unwrap();
        assert_eq!(recovered.snapshot(), rt.snapshot());
        assert!(recovered.is_complete(id).unwrap());
    }

    #[test]
    fn checkpoint_never_loses_concurrent_starts_or_deploys() {
        use ctr_store::MemStore;
        // Regression: `start` used to append its Start record *before*
        // taking the shard lock (and deploys appended before the
        // registry write lock), so a checkpoint could freeze the fleet
        // without the new instance, truncate its already-appended Start
        // record behind the snapshot, and recovery would then fail with
        // UnknownInstance on the instance's surviving event records.
        // Hammer starts, fires, redeploys, and checkpoints concurrently;
        // recovery reproducing the exact fleet is the assertion.
        let store = Arc::new(MemStore::new());
        let rt = SharedRuntime::with_store(Arc::clone(&store) as Arc<dyn Store>);
        rt.deploy_source(PAY).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rt = rt.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let id = rt.start("pay").unwrap();
                        rt.fire(id, "invoice").unwrap();
                    }
                });
            }
            let deployer = rt.clone();
            scope.spawn(move || {
                for _ in 0..50 {
                    deployer.deploy_source(PAY).unwrap();
                }
            });
            let compactor = rt.clone();
            scope.spawn(move || {
                for _ in 0..50 {
                    compactor.checkpoint().unwrap();
                }
            });
        });
        let recovered = SharedRuntime::open(store).unwrap();
        assert_eq!(recovered.snapshot(), rt.snapshot());
        assert_eq!(recovered.instances().len(), 200);
    }

    const TIMED: &str = "workflow timed { graph invoice * approve * file; after(approve, 30s); }";
    const GUARDED: &str = "workflow guarded { graph invoice * approve; deadline(approve, 1h); }";

    #[test]
    fn shared_timers_match_the_single_runtime() {
        let shared = SharedRuntime::new();
        let mut plain = Runtime::new();
        for src in [TIMED, GUARDED] {
            shared.deploy_source(src).unwrap();
            plain.deploy_source(src).unwrap();
        }
        let t = shared.start("timed").unwrap();
        assert_eq!(t, plain.start("timed").unwrap());
        let g = shared.start("guarded").unwrap();
        assert_eq!(g, plain.start("guarded").unwrap());
        assert_eq!(shared.pending_timer_count(), plain.pending_timer_count());
        assert_eq!(shared.next_timer_due(), plain.next_timer_due());
        shared.fire(t, "invoice").unwrap();
        plain.fire(t, "invoice").unwrap();
        assert_eq!(shared.snapshot(), plain.snapshot());
        assert_eq!(
            shared.advance(30_000).unwrap(),
            plain.advance(30_000).unwrap()
        );
        assert_eq!(shared.clock_ms(), 30_000);
        assert_eq!(shared.pending_timers(t).unwrap(), Vec::new());
        assert_eq!(
            shared.pending_timers(g).unwrap(),
            plain.pending_timers(g).unwrap()
        );
        // The guarded deadline is satisfied by its base event on both.
        shared.fire(g, "invoice").unwrap();
        plain.fire(g, "invoice").unwrap();
        shared.fire(g, "approve").unwrap();
        plain.fire(g, "approve").unwrap();
        assert!(shared.pending_timers(g).unwrap().is_empty());
        assert_eq!(shared.snapshot(), plain.snapshot());
    }

    #[test]
    fn shared_cancel_timer_disarms_and_rejects_unknowns() {
        let rt = SharedRuntime::new();
        rt.deploy_source(TIMED).unwrap();
        let id = rt.start("timed").unwrap();
        assert_eq!(
            rt.cancel_timer(id, "nope"),
            Err(RuntimeError::UnknownTimer {
                instance: id,
                event: "nope".to_owned()
            })
        );
        rt.cancel_timer(id, "approve@after30000").unwrap();
        assert_eq!(rt.pending_timer_count(), 0);
        assert!(rt.advance(100_000).unwrap().is_empty());
    }

    #[test]
    fn concurrent_advances_fire_each_timer_exactly_once() {
        let rt = SharedRuntime::new();
        rt.deploy_source(TIMED).unwrap();
        let n = 64u64;
        let ids: Vec<_> = (0..n).map(|_| rt.start("timed").unwrap()).collect();
        for &id in &ids {
            rt.fire(id, "invoice").unwrap();
        }
        assert_eq!(rt.pending_timer_count(), n as usize);
        let mut total = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rt = rt.clone();
                    scope.spawn(move || rt.advance(30_000).unwrap().len())
                })
                .collect();
            for h in handles {
                total += h.join().unwrap();
            }
        });
        assert_eq!(total, n as usize, "every tick fired exactly once");
        assert_eq!(rt.pending_timer_count(), 0);
        for &id in &ids {
            assert_eq!(
                rt.journal(id).unwrap(),
                vec!["invoice", "approve@after30000"]
            );
            rt.fire(id, "approve").unwrap();
        }
    }

    #[test]
    fn shared_timer_recovery_rearms_from_the_wal() {
        use ctr_store::MemStore;
        let store = Arc::new(MemStore::new());
        let snap_before;
        {
            let rt = SharedRuntime::with_store(Arc::clone(&store) as Arc<dyn Store>);
            rt.deploy_source(TIMED).unwrap();
            let id = rt.start("timed").unwrap();
            rt.fire(id, "invoice").unwrap();
            snap_before = rt.snapshot();
        }
        // Arm-before-visible: the arm record precedes the start record.
        let records = store.replay().unwrap().records;
        let arm = records
            .iter()
            .position(|r| matches!(r, ctr_store::Record::TimerArm { .. }))
            .expect("arm record present");
        let start = records
            .iter()
            .position(|r| matches!(r, ctr_store::Record::Start { .. }))
            .expect("start record present");
        assert!(arm < start, "arm-before-visible: {records:?}");
        let rt = SharedRuntime::open(store).unwrap();
        assert_eq!(rt.snapshot(), snap_before);
        assert_eq!(
            rt.pending_timers(0).unwrap(),
            vec![("approve@after30000".to_owned(), 30_000)]
        );
        let fired = rt.advance(30_000).unwrap();
        assert_eq!(fired, vec![(0, "approve@after30000".to_owned())]);
        assert_eq!(rt.clock_ms(), 30_000);
    }

    #[test]
    fn shared_timer_fires_are_durable_and_survive_checkpoint() {
        use ctr_store::MemStore;
        let store = Arc::new(MemStore::new());
        let rt = SharedRuntime::with_store(Arc::clone(&store) as Arc<dyn Store>);
        rt.deploy_source(TIMED).unwrap();
        rt.deploy_source(GUARDED).unwrap();
        let t = rt.start("timed").unwrap();
        let g = rt.start("guarded").unwrap();
        rt.fire(t, "invoice").unwrap();
        rt.advance(30_000).unwrap();
        rt.checkpoint().unwrap();
        rt.fire(g, "invoice").unwrap();
        let snap = rt.snapshot();
        drop(rt);
        let rt = SharedRuntime::open(store).unwrap();
        assert_eq!(rt.snapshot(), snap);
        assert_eq!(rt.clock_ms(), 0, "clock is not part of the snapshot");
        // The surviving deadline still expires (files past-due on the
        // recovered wheel) and fires as a compensationable event.
        let fired = rt.advance(3_600_000).unwrap();
        assert_eq!(fired, vec![(g, "approve@deadline3600000".to_owned())]);
    }

    #[test]
    fn unknown_ids_and_names_error() {
        let rt = SharedRuntime::new();
        assert_eq!(
            rt.start("ghost"),
            Err(RuntimeError::UnknownWorkflow("ghost".to_owned()))
        );
        assert_eq!(rt.eligible(42), Err(RuntimeError::UnknownInstance(42)));
        assert_eq!(rt.fire(42, "x"), Err(RuntimeError::UnknownInstance(42)));
    }
}
