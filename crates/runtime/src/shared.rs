//! A thread-safe handle over the runtime, for services where several
//! clients report events concurrently.
//!
//! The scheduler's state is tiny (journals), so a single coarse lock is
//! the right design: contention is bounded by journal replay, and the
//! eligibility check plus journal append happen atomically — two clients
//! racing to fire conflicting events serialize, and exactly one of two
//! mutually-exclusive branch events wins (the other gets
//! [`RuntimeError::NotEligible`] with the post-commit alternatives).

use crate::{InstanceId, InstanceStatus, Runtime, RuntimeError};
use std::sync::{Arc, Mutex, MutexGuard};

/// A cloneable, `Send + Sync` handle to a shared [`Runtime`].
#[derive(Clone, Default)]
pub struct SharedRuntime {
    inner: Arc<Mutex<Runtime>>,
}

impl SharedRuntime {
    /// Wraps an empty runtime.
    pub fn new() -> SharedRuntime {
        SharedRuntime::default()
    }

    /// Wraps an existing runtime.
    pub fn from_runtime(rt: Runtime) -> SharedRuntime {
        SharedRuntime {
            inner: Arc::new(Mutex::new(rt)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Runtime> {
        // A poisoned lock means a panic mid-operation; every operation
        // either completes its journal append or leaves it untouched, so
        // continuing with the inner state is safe.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// See [`Runtime::deploy_source`].
    pub fn deploy_source(&self, source: &str) -> Result<String, RuntimeError> {
        self.lock().deploy_source(source)
    }

    /// See [`Runtime::start`].
    pub fn start(&self, workflow: &str) -> Result<InstanceId, RuntimeError> {
        self.lock().start(workflow)
    }

    /// See [`Runtime::fire`] — atomic with respect to other clients.
    pub fn fire(&self, id: InstanceId, event: &str) -> Result<InstanceStatus, RuntimeError> {
        self.lock().fire(id, event)
    }

    /// See [`Runtime::eligible`]. The answer is a snapshot: another
    /// client may commit a branch before you act on it — `fire` remains
    /// the arbiter.
    pub fn eligible(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
        self.lock().eligible(id)
    }

    /// See [`Runtime::journal`].
    pub fn journal(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
        self.lock().journal(id)
    }

    /// See [`Runtime::status`].
    pub fn status(&self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
        self.lock().status(id)
    }

    /// See [`Runtime::try_complete`].
    pub fn try_complete(&self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
        self.lock().try_complete(id)
    }

    /// See [`Runtime::snapshot`] — a consistent point-in-time snapshot.
    pub fn snapshot(&self) -> String {
        self.lock().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_pay() -> SharedRuntime {
        let rt = SharedRuntime::new();
        rt.deploy_source("workflow pay { graph invoice * (approve + reject) * file; }")
            .unwrap();
        rt
    }

    #[test]
    fn handle_is_send_sync_and_cloneable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<SharedRuntime>();
    }

    #[test]
    fn racing_exclusive_branches_serialize() {
        // Two threads race to decide the same instance; exactly one of
        // approve/reject lands, every time.
        for round in 0..20 {
            let rt = shared_pay();
            let id = rt.start("pay").unwrap();
            rt.fire(id, "invoice").unwrap();

            let (a, b) = (rt.clone(), rt.clone());
            let ta = std::thread::spawn(move || a.fire(id, "approve").is_ok());
            let tb = std::thread::spawn(move || b.fire(id, "reject").is_ok());
            let (ra, rb) = (ta.join().unwrap(), tb.join().unwrap());
            assert!(
                ra ^ rb,
                "round {round}: exactly one decision wins (a={ra}, b={rb})"
            );

            let journal = rt.journal(id).unwrap();
            assert_eq!(journal.len(), 2);
            assert!(journal[1] == "approve" || journal[1] == "reject");
        }
    }

    #[test]
    fn concurrent_instances_do_not_interfere() {
        let rt = shared_pay();
        let ids: Vec<_> = (0..8).map(|_| rt.start("pay").unwrap()).collect();
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let rt = rt.clone();
                std::thread::spawn(move || {
                    rt.fire(id, "invoice").unwrap();
                    rt.fire(id, "approve").unwrap();
                    rt.fire(id, "file").unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for id in ids {
            assert_eq!(rt.status(id).unwrap(), InstanceStatus::Completed);
        }
    }

    #[test]
    fn snapshot_under_concurrency_is_consistent() {
        let rt = shared_pay();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        let writer = {
            let rt = rt.clone();
            std::thread::spawn(move || {
                let _ = rt.fire(id, "approve");
                let _ = rt.fire(id, "file");
            })
        };
        // Snapshots taken at any point restore cleanly.
        for _ in 0..10 {
            let snap = rt.snapshot();
            Runtime::restore(&snap).expect("snapshot is internally consistent");
        }
        writer.join().unwrap();
        let final_snap = rt.snapshot();
        let restored = Runtime::restore(&final_snap).unwrap();
        assert!(restored.is_complete(id).unwrap());
    }
}
