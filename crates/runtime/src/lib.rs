#![warn(missing_docs)]

//! # ctr-runtime — workflow instance management
//!
//! The operational layer a workflow management system puts on top of the
//! paper's machinery: **deploy** a specification (compiling it once,
//! rejecting inconsistent ones — Theorem 5.8 at deployment time), **start**
//! instances, **fire** events as the outside world reports them, and
//! **snapshot/restore** everything as plain text.
//!
//! Instances are **event-sourced**: the only persistent state is the
//! journal of fired events. Each instance holds a **cached incremental
//! cursor** over its deployment's `Arc`-shared compiled [`Program`]:
//! the cursor is materialized once at [`Runtime::start`], advanced in
//! place on every [`Runtime::fire`], and rebuilt by journal replay only
//! on [`Runtime::restore`] — so steady-state work per fire is constant
//! in the journal length ([`Runtime::replayed_steps`] counts the replay
//! work and stays at zero outside recovery). The cache is sound because
//! replay is deterministic: the compiled scheduler resolves
//! event-to-node ambiguity by a fixed rule, so replaying the journal
//! from scratch always reproduces the cached cursor state. This keeps
//! crash recovery trivial (replay) and the snapshot format
//! human-readable: the compiled goal in its concrete syntax plus one
//! journal line per instance.
//!
//! ```
//! use ctr_runtime::Runtime;
//!
//! let mut rt = Runtime::new();
//! rt.deploy_source("workflow pay { graph invoice * (approve + reject) * file; }").unwrap();
//! let id = rt.start("pay").unwrap();
//! assert_eq!(rt.eligible(id).unwrap(), vec!["invoice".to_owned()]);
//! rt.fire(id, "invoice").unwrap();
//! rt.fire(id, "approve").unwrap();
//! rt.fire(id, "file").unwrap();
//! assert!(rt.is_complete(id).unwrap());
//! ```

pub mod enact;
pub mod shared;
pub mod stats;
pub mod wheel;

use ctr::goal::Goal;
use ctr::timer::{parse_tick, TimerKind};
use ctr_engine::scheduler::{Program, Scheduler};
use ctr_store::Record;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

pub use ctr::symbol::Symbol;
pub use ctr_store::{Durability, MemStore, Store, StoreError, StoreStats, WalOptions, WalStore};
pub use enact::{
    AttemptOutcome, AttemptRecord, Backoff, ChoicePolicy, EnactError, EnactReport, Enactor, Fault,
    FaultPlan, Handler, RetryPolicy,
};
pub use shared::{CoarseRuntime, SharedRuntime};
pub use stats::{simulate, simulate_par, Simulation};
pub use wheel::{TimerToken, TimerWheel};

/// Identifier of a running instance.
pub type InstanceId = u64;

/// Errors from the runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// The specification failed to parse.
    Parse(String),
    /// The specification failed to compile (e.g. not unique-event).
    Compile(String),
    /// The specification is inconsistent: it was rejected at deployment.
    Inconsistent(String),
    /// No workflow deployed under this name.
    UnknownWorkflow(String),
    /// No instance with this id.
    UnknownInstance(InstanceId),
    /// The event is not eligible at the instance's current stage.
    NotEligible {
        /// The rejected event.
        event: String,
        /// What the pro-active scheduler would accept instead.
        eligible: Vec<String>,
    },
    /// The instance already completed.
    AlreadyComplete(InstanceId),
    /// A snapshot could not be decoded.
    Snapshot(String),
    /// The durable store rejected an operation (I/O failure or
    /// unrecoverable corruption). The in-memory state it guards is
    /// rolled back: a failed persist never leaves a half-committed fire.
    Store(String),
    /// A journal failed to replay against its deployed program — the
    /// journal (or the program it was validated against) is corrupt.
    Journal(String),
    /// No pending timer with this tick event on the instance.
    UnknownTimer {
        /// The instance polled or cancelled against.
        instance: InstanceId,
        /// The tick event that is not pending.
        event: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Parse(e) => write!(f, "parse error: {e}"),
            RuntimeError::Compile(e) => write!(f, "compile error: {e}"),
            RuntimeError::Inconsistent(name) => {
                write!(
                    f,
                    "workflow `{name}` is inconsistent and cannot be deployed"
                )
            }
            RuntimeError::UnknownWorkflow(name) => write!(f, "no workflow named `{name}`"),
            RuntimeError::UnknownInstance(id) => write!(f, "no instance #{id}"),
            RuntimeError::NotEligible { event, eligible } => write!(
                f,
                "event `{event}` is not eligible now (eligible: {})",
                eligible.join(", ")
            ),
            RuntimeError::AlreadyComplete(id) => write!(f, "instance #{id} already completed"),
            RuntimeError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            RuntimeError::Store(e) => write!(f, "store error: {e}"),
            RuntimeError::Journal(e) => write!(f, "journal error: {e}"),
            RuntimeError::UnknownTimer { instance, event } => {
                write!(f, "instance #{instance} has no pending timer `{event}`")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Lifecycle of an instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstanceStatus {
    /// Events remain to fire.
    Running,
    /// The workflow ran to completion.
    Completed,
}

impl fmt::Display for InstanceStatus {
    /// The snapshot's status tag: `running` / `completed`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InstanceStatus::Running => "running",
            InstanceStatus::Completed => "completed",
        })
    }
}

/// Per-event result of a batched fire ([`Runtime::fire_batch`],
/// [`SharedRuntime::fire_batch`], [`SharedRuntime::fire_many`]).
///
/// A batch commits its events in order and stops at the first failure:
/// the committed prefix is journaled exactly as if fired individually,
/// the failing event reports why, and everything after it is skipped
/// untried. The outcome vector always has one entry per input event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FireOutcome {
    /// The event fired; the instance's status immediately after it.
    Fired(InstanceStatus),
    /// The event was rejected (not eligible, instance already complete,
    /// or unknown instance in [`SharedRuntime::fire_many`]); the batch
    /// stopped here.
    Rejected(RuntimeError),
    /// A preceding event of the same instance's batch failed; this one
    /// was never attempted.
    Skipped,
}

/// One timer declared by a deployment's compiled goal: the synthetic
/// tick event carries its own delay in its name (`base@after30000`),
/// parsed once at deploy time. `base` is `Some` only for deadline
/// ticks — the event whose firing structurally satisfies the deadline
/// and therefore disarms it.
pub(crate) struct DeployedTimer {
    pub(crate) tick: Symbol,
    pub(crate) delay_ms: u64,
    pub(crate) base: Option<Symbol>,
}

pub(crate) struct Deployment {
    /// The compiled goal rendered once in its concrete syntax — the
    /// exact bytes both the snapshot line and the durable deploy record
    /// use. Caching the render keeps snapshots (which compaction puts
    /// on a hot-ish path) from re-walking the goal tree per call.
    pub(crate) rendered: String,
    /// The scheduling arena, shared (`Arc`) with every instance cursor.
    pub(crate) program: Arc<Program>,
    /// Timers to arm for every new instance, sorted by tick name.
    pub(crate) timers: Vec<DeployedTimer>,
}

impl Deployment {
    /// Compiles a goal into a deployment, caching its rendered text and
    /// scanning its event alphabet once for timer ticks.
    pub(crate) fn new(compiled: Goal) -> Result<Deployment, RuntimeError> {
        let program =
            Program::compile(&compiled).map_err(|e| RuntimeError::Compile(e.to_string()))?;
        let mut timers: Vec<DeployedTimer> = compiled
            .events()
            .iter()
            .filter_map(|&event| {
                let tick = parse_tick(event.as_str())?;
                let base = match tick.kind {
                    TimerKind::Deadline => Symbol::try_get(tick.base),
                    TimerKind::After => None,
                };
                Some(DeployedTimer {
                    tick: event,
                    delay_ms: tick.delay_ms,
                    base,
                })
            })
            .collect();
        timers.sort_by(|a, b| a.tick.as_str().cmp(b.tick.as_str()));
        Ok(Deployment {
            rendered: compiled.to_string(),
            program: Arc::new(program),
            timers,
        })
    }

    /// Appends this deployment's snapshot line. Both runtimes serialize
    /// through here, which is what keeps their formats byte-identical.
    pub(crate) fn snapshot_line(&self, out: &mut String, name: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "workflow {name} := {}", self.rendered);
    }

    /// Bytes [`Deployment::snapshot_line`] will append for `name`.
    pub(crate) fn snapshot_len(&self, name: &str) -> usize {
        "workflow  := \n".len() + name.len() + self.rendered.len()
    }
}

/// One pending timer of an instance: the tick event, its absolute due
/// on the runtime's logical clock, the wheel token that disarms it, and
/// (for deadlines) the base event whose firing satisfies it.
pub(crate) struct ArmedTimer {
    pub(crate) tick: Symbol,
    pub(crate) due: u64,
    pub(crate) token: TimerToken,
    pub(crate) base: Option<Symbol>,
}

/// Outcome of [`Instance::fire_timer`].
pub(crate) enum TimerFired {
    /// The tick committed as an ordinary journal event.
    Fired,
    /// The tick was no longer fireable — its deadline branch had been
    /// committed away — so the expiry disarmed vacuously.
    Vacuous,
}

/// One running instance: the journal (sole persistent state) plus the
/// cached cursor. All per-instance operations live here so the
/// single-threaded [`Runtime`] and the sharded [`SharedRuntime`] run the
/// exact same logic — the latter merely wraps each `Instance` in its own
/// lock.
pub(crate) struct Instance {
    pub(crate) workflow: String,
    pub(crate) journal: Vec<Symbol>,
    pub(crate) status: InstanceStatus,
    /// The program this instance pinned at start — also held by
    /// `cursor`, kept separately so the store-failure rollback path can
    /// rebuild the cursor without resolving the deployment registry.
    pub(crate) program: Arc<Program>,
    /// Cached cursor over the deployment's program: always equal to the
    /// state obtained by replaying `journal` against a fresh scheduler
    /// (replay is deterministic), but maintained incrementally.
    pub(crate) cursor: Scheduler<Arc<Program>>,
    /// Timers still pending for this instance (few per instance; linear
    /// scans). The wheel holds the mirror entry; `token` ties the two.
    pub(crate) timers: Vec<ArmedTimer>,
}

impl Instance {
    /// A fresh instance of `workflow`, materializing its cursor once.
    pub(crate) fn new(workflow: String, program: Arc<Program>) -> Instance {
        let cursor = Scheduler::new(Arc::clone(&program));
        let status = if cursor.is_complete() {
            InstanceStatus::Completed
        } else {
            InstanceStatus::Running
        };
        Instance {
            workflow,
            journal: Vec::new(),
            status,
            program,
            cursor,
            timers: Vec::new(),
        }
    }

    /// Records a wheel-armed timer on this instance.
    pub(crate) fn arm_timer(
        &mut self,
        tick: Symbol,
        due: u64,
        base: Option<Symbol>,
        token: TimerToken,
    ) {
        self.timers.push(ArmedTimer {
            tick,
            due,
            token,
            base,
        });
    }

    /// Removes and returns the pending timer for `tick`, if any.
    pub(crate) fn take_timer(&mut self, tick: Symbol) -> Option<ArmedTimer> {
        let i = self.timers.iter().position(|t| t.tick == tick)?;
        Some(self.timers.remove(i))
    }

    /// Removes every timer settled by the journal suffix
    /// `committed_from..` — the tick itself fired, or a deadline's base
    /// event fired — or by completion (a completed instance has no
    /// future), returning their wheel tokens. The caller cancels the
    /// tokens on the wheel; split this way so [`Runtime`] and
    /// [`SharedRuntime`] derive disarms identically under their
    /// different locking.
    pub(crate) fn settled_tokens(&mut self, committed_from: usize) -> Vec<TimerToken> {
        if self.timers.is_empty() {
            return Vec::new();
        }
        let mut dead: Vec<TimerToken> = Vec::new();
        if self.status == InstanceStatus::Completed {
            dead.extend(
                std::mem::take(&mut self.timers)
                    .into_iter()
                    .map(|t| t.token),
            );
        } else {
            let fired: Vec<Symbol> = self.journal[committed_from..].to_vec();
            for sym in fired {
                if let Some(t) = self.take_timer(sym) {
                    dead.push(t.token);
                }
                while let Some(pos) = self.timers.iter().position(|t| t.base == Some(sym)) {
                    dead.push(self.timers.remove(pos).token);
                }
            }
        }
        dead
    }

    /// Fires an expired tick as a journal event, write-ahead as
    /// [`Record::TimerFire`] (which also restores the clock watermark
    /// at recovery). A tick that is no longer structurally fireable —
    /// its deadline's or-branch was committed away without the derived
    /// disarm catching it — resolves [`TimerFired::Vacuous`], journaled
    /// as [`Record::TimerCancel`] because the advance that discovered
    /// it is not itself replayable. The caller has already removed the
    /// timer from `timers`; on `Err` nothing was journaled and the
    /// caller re-arms.
    pub(crate) fn fire_timer(
        &mut self,
        id: InstanceId,
        tick: Symbol,
        at_ms: u64,
        store: Option<&dyn Store>,
    ) -> Result<TimerFired, RuntimeError> {
        if self.status == InstanceStatus::Completed || !self.cursor.fire_event(tick) {
            if let Some(store) = store {
                store
                    .append(&Record::TimerCancel {
                        instance: id,
                        event: tick.as_str().to_owned(),
                    })
                    .map_err(|e| RuntimeError::Store(e.to_string()))?;
            }
            return Ok(TimerFired::Vacuous);
        }
        if let Some(store) = store {
            let record = Record::TimerFire {
                instance: id,
                event: tick.as_str().to_owned(),
                at_ms,
            };
            if let Err(e) = store.append(&record) {
                self.rebuild_cursor(Arc::clone(&self.program))?;
                return Err(RuntimeError::Store(e.to_string()));
            }
        }
        self.journal.push(tick);
        if self.cursor.is_complete() {
            self.status = InstanceStatus::Completed;
        }
        Ok(TimerFired::Fired)
    }

    /// Fires one event; see [`Runtime::fire`]. With a store attached
    /// this is write-ahead: the event record must be durable before the
    /// in-memory journal commits, and a failed persist rolls the cursor
    /// back (by replaying the unchanged journal) so nothing half-fires.
    pub(crate) fn fire(
        &mut self,
        id: InstanceId,
        event: &str,
        store: Option<&dyn Store>,
    ) -> Result<InstanceStatus, RuntimeError> {
        if self.status == InstanceStatus::Completed {
            return Err(RuntimeError::AlreadyComplete(id));
        }
        // Non-interning lookup: event names come from clients, and a name
        // that was never interned cannot be in any deployed program — it
        // is rejected without permanently growing the global symbol
        // table on behalf of unknown (possibly hostile) input.
        let Some(symbol) = Symbol::try_get(event) else {
            return Err(RuntimeError::NotEligible {
                event: event.to_owned(),
                eligible: self.eligible_names(),
            });
        };
        // A failed `fire_event` leaves the cursor untouched, so the
        // cache stays valid on the error path.
        if !self.cursor.fire_event(symbol) {
            return Err(RuntimeError::NotEligible {
                event: event.to_owned(),
                eligible: self.eligible_names(),
            });
        }
        if let Some(store) = store {
            let record = Record::Events {
                instance: id,
                events: vec![event.to_owned()],
            };
            if let Err(e) = store.append(&record) {
                self.rebuild_cursor(Arc::clone(&self.program))?;
                return Err(RuntimeError::Store(e.to_string()));
            }
        }
        self.journal.push(symbol);
        if self.cursor.is_complete() {
            self.status = InstanceStatus::Completed;
        }
        Ok(self.status)
    }

    /// Fires a batch of events in order, stopping at the first failure;
    /// see [`Runtime::fire_batch`]. The committed prefix reaches the
    /// journal through a single `extend` — and, with a store attached,
    /// a single durable append: the whole batch is one group commit
    /// (one fsync on the WAL backend). If that append fails, the batch
    /// commits **nothing** — the cursor is rolled back by replay, the
    /// first event reports [`RuntimeError::Store`], and the rest are
    /// [`FireOutcome::Skipped`]. `Err` is reserved for a rollback that
    /// itself finds the journal unreplayable.
    pub(crate) fn fire_batch<S: AsRef<str>>(
        &mut self,
        id: InstanceId,
        events: &[S],
        store: Option<&dyn Store>,
    ) -> Result<Vec<FireOutcome>, RuntimeError> {
        let status_before = self.status;
        let mut outcomes = Vec::with_capacity(events.len());
        let mut committed: Vec<Symbol> = Vec::with_capacity(events.len());
        for event in events {
            if matches!(
                outcomes.last(),
                Some(FireOutcome::Rejected(_) | FireOutcome::Skipped)
            ) {
                outcomes.push(FireOutcome::Skipped);
                continue;
            }
            let event = event.as_ref();
            if self.status == InstanceStatus::Completed {
                outcomes.push(FireOutcome::Rejected(RuntimeError::AlreadyComplete(id)));
                continue;
            }
            // Same non-interning lookup as `fire`: unknown names reject
            // without growing the symbol table.
            let symbol = Symbol::try_get(event).filter(|&s| self.cursor.fire_event(s));
            let Some(symbol) = symbol else {
                outcomes.push(FireOutcome::Rejected(RuntimeError::NotEligible {
                    event: event.to_owned(),
                    eligible: self.eligible_names(),
                }));
                continue;
            };
            committed.push(symbol);
            if self.cursor.is_complete() {
                self.status = InstanceStatus::Completed;
            }
            outcomes.push(FireOutcome::Fired(self.status));
        }
        if let Some(store) = store {
            if !committed.is_empty() {
                let record = Record::Events {
                    instance: id,
                    events: committed.iter().map(|s| s.as_str().to_owned()).collect(),
                };
                if let Err(e) = store.append(&record) {
                    self.rebuild_cursor(Arc::clone(&self.program))?;
                    self.status = status_before;
                    let mut failed = Vec::with_capacity(events.len());
                    failed.push(FireOutcome::Rejected(RuntimeError::Store(e.to_string())));
                    failed.resize(events.len(), FireOutcome::Skipped);
                    return Ok(failed);
                }
            }
        }
        self.journal.extend(committed);
        Ok(outcomes)
    }

    /// Fires several independent *runs* (sub-batches) against this
    /// instance, each with [`Instance::fire_batch`] semantics — a
    /// failure stops its own run (rest [`FireOutcome::Skipped`]) but
    /// never the following runs, exactly as if the runs had been
    /// submitted as separate `fire_batch` calls back to back. The
    /// difference is durability traffic: all committed events of the
    /// whole burst reach the store through **one** append (one group
    /// commit on the WAL backend) instead of one per run.
    ///
    /// The burst is consequently one commit unit: if the append fails,
    /// *every* run rolls back (cursor rebuilt by replay, status
    /// restored) and every run reports `Rejected(Store)` on its first
    /// event with the rest `Skipped` — nothing was acknowledged, so no
    /// caller can have observed the discarded prefix. `Err` is reserved
    /// for a rollback that itself finds the journal unreplayable.
    pub(crate) fn fire_runs<S: AsRef<str>>(
        &mut self,
        id: InstanceId,
        runs: &[&[S]],
        store: Option<&dyn Store>,
    ) -> Result<Vec<Vec<FireOutcome>>, RuntimeError> {
        let status_before = self.status;
        let journal_before = self.journal.len();
        let mut outcomes: Vec<Vec<FireOutcome>> = Vec::with_capacity(runs.len());
        let mut committed: Vec<Symbol> = Vec::new();
        for events in runs {
            let mut run = Vec::with_capacity(events.len());
            for event in *events {
                if matches!(
                    run.last(),
                    Some(FireOutcome::Rejected(_) | FireOutcome::Skipped)
                ) {
                    run.push(FireOutcome::Skipped);
                    continue;
                }
                let event = event.as_ref();
                if self.status == InstanceStatus::Completed {
                    run.push(FireOutcome::Rejected(RuntimeError::AlreadyComplete(id)));
                    continue;
                }
                let symbol = Symbol::try_get(event).filter(|&s| self.cursor.fire_event(s));
                let Some(symbol) = symbol else {
                    run.push(FireOutcome::Rejected(RuntimeError::NotEligible {
                        event: event.to_owned(),
                        eligible: self.eligible_names(),
                    }));
                    continue;
                };
                committed.push(symbol);
                // Later runs see the committed prefix immediately — the
                // in-memory journal is extended run by run so a mid-burst
                // snapshot or rollback always has the true event list.
                self.journal.push(symbol);
                if self.cursor.is_complete() {
                    self.status = InstanceStatus::Completed;
                }
                run.push(FireOutcome::Fired(self.status));
            }
            outcomes.push(run);
        }
        if let Some(store) = store {
            if !committed.is_empty() {
                let record = Record::Events {
                    instance: id,
                    events: committed.iter().map(|s| s.as_str().to_owned()).collect(),
                };
                if let Err(e) = store.append(&record) {
                    self.journal.truncate(journal_before);
                    self.rebuild_cursor(Arc::clone(&self.program))?;
                    self.status = status_before;
                    let failed = runs
                        .iter()
                        .map(|events| {
                            let mut run = Vec::with_capacity(events.len());
                            if !events.is_empty() {
                                run.push(FireOutcome::Rejected(RuntimeError::Store(e.to_string())));
                                run.resize(events.len(), FireOutcome::Skipped);
                            }
                            run
                        })
                        .collect();
                    return Ok(failed);
                }
            }
        }
        Ok(outcomes)
    }

    /// Probes silent completion; see [`Runtime::try_complete`]. A
    /// silent completion is the one status change replaying the event
    /// journal cannot reproduce, so with a store attached it persists
    /// its own [`Record::Complete`] — durably, before the status flips.
    pub(crate) fn try_complete(
        &mut self,
        id: InstanceId,
        store: Option<&dyn Store>,
    ) -> Result<InstanceStatus, RuntimeError> {
        // Probe on a clone: silent advances are NOT journaled, so they
        // must not leak into the cached cursor either — the cache always
        // mirrors exactly what journal replay would produce. A silent
        // *choice* is re-resolved after restore, so completion is
        // recorded in the status instead.
        let mut probe = self.cursor.clone();
        loop {
            if probe.is_complete() {
                if self.status != InstanceStatus::Completed {
                    if let Some(store) = store {
                        store
                            .append(&Record::Complete { instance: id })
                            .map_err(|e| RuntimeError::Store(e.to_string()))?;
                    }
                    self.status = InstanceStatus::Completed;
                }
                return Ok(InstanceStatus::Completed);
            }
            let eligible = probe.eligible();
            let Some(silent) = eligible.iter().find(|c| !c.observable) else {
                return Ok(self.status);
            };
            probe.fire(silent.node);
        }
    }

    /// Observable eligible events, deduplicated and sorted by name —
    /// allocation-free apart from the returned `Vec` (symbols resolve
    /// without copying). Timer ticks are filtered out: they fire
    /// through [`Runtime::advance`], never from clients, and the
    /// pending set is surfaced by [`Runtime::pending_timers`] instead.
    pub(crate) fn eligible_symbols(&self) -> Vec<Symbol> {
        let mut events: Vec<Symbol> = self
            .cursor
            .eligible()
            .iter()
            .filter_map(|c| self.cursor.program().event(c.node))
            .filter_map(ctr::term::Atom::as_event)
            .filter(|s| parse_tick(s.as_str()).is_none())
            .collect();
        events.sort_unstable_by_key(|s| s.as_str());
        events.dedup();
        events
    }

    /// [`Instance::eligible_symbols`], materialized as owned strings.
    pub(crate) fn eligible_names(&self) -> Vec<String> {
        self.eligible_symbols()
            .into_iter()
            .map(|s| s.as_str().to_owned())
            .collect()
    }

    /// The journal as owned strings.
    pub(crate) fn journal_names(&self) -> Vec<String> {
        self.journal.iter().map(|s| s.as_str().to_owned()).collect()
    }

    /// Appends this instance's snapshot line (shared serialization path;
    /// see [`Deployment::snapshot_line`]). Writes the journal symbols
    /// straight into `out` — no intermediate `Vec` or `join` allocation
    /// per instance, which matters once compaction snapshots a large
    /// fleet on the hot path.
    pub(crate) fn snapshot_line(&self, out: &mut String, id: InstanceId) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "instance {id} of {} [{}]: ",
            self.workflow, self.status
        );
        for (i, event) in self.journal.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(event.as_str());
        }
        out.push('\n');
        // Pending timers follow their instance line, sorted by tick
        // name — symbol ids differ across processes, names don't, and
        // snapshots must be byte-deterministic.
        let mut pending: Vec<&ArmedTimer> = self.timers.iter().collect();
        pending.sort_by(|a, b| a.tick.as_str().cmp(b.tick.as_str()));
        for t in pending {
            let _ = writeln!(out, "timer {id} {} due {}", t.tick.as_str(), t.due);
        }
    }

    /// Bytes [`Instance::snapshot_line`] will append for `id` (the
    /// status is sized at its longer variant; a one-byte-per-instance
    /// overshoot is fine for a reserve hint).
    pub(crate) fn snapshot_len(&self, id: InstanceId) -> usize {
        let id_digits = if id == 0 { 1 } else { id.ilog10() as usize + 1 };
        "instance  of  [completed]: \n".len()
            + id_digits
            + self.workflow.len()
            + self
                .journal
                .iter()
                .map(|s| s.as_str().len() + 1)
                .sum::<usize>()
            + self
                .timers
                .iter()
                .map(|t| "timer   due \n".len() + id_digits + t.tick.as_str().len() + 20)
                .sum::<usize>()
    }

    /// Rebuilds the cursor by replaying the journal against `program`,
    /// re-pinning the instance to it; returns the number of replayed
    /// events. A journal that no longer replays — corrupt storage, or a
    /// program that does not match the one the journal was validated
    /// against — is a typed [`RuntimeError::Journal`] error, and the
    /// instance keeps its previous cursor untouched. (This used to be a
    /// `debug_assert!`, i.e. silent cursor corruption in release builds;
    /// with journals coming back from disk it must be a real error.)
    pub(crate) fn rebuild_cursor(&mut self, program: Arc<Program>) -> Result<u64, RuntimeError> {
        let mut cursor = Scheduler::new(Arc::clone(&program));
        for &event in &self.journal {
            if !cursor.fire_event(event) {
                return Err(RuntimeError::Journal(format!(
                    "replay diverged: journaled event `{}` is not eligible under the deployed program",
                    event.as_str()
                )));
            }
        }
        self.program = program;
        self.cursor = cursor;
        Ok(self.journal.len() as u64)
    }
}

/// Renders the canonical snapshot text into `out`, clearing it first —
/// the single serialization path under [`Runtime::snapshot`],
/// [`SharedRuntime::snapshot`], and both checkpoints, which is what
/// keeps their bytes identical. The buffer is pre-sized in one counting
/// pass, so a caller reusing one `String` across snapshots settles into
/// a single steady-state allocation.
pub(crate) fn render_snapshot<'a, D, I>(deployments: D, instances: I, out: &mut String)
where
    D: Iterator<Item = (&'a String, &'a Deployment)> + Clone,
    I: Iterator<Item = (InstanceId, &'a Instance)> + Clone,
{
    out.clear();
    let mut len = SNAPSHOT_HEADER.len() + 1;
    for (name, d) in deployments.clone() {
        len += d.snapshot_len(name);
    }
    for (id, inst) in instances.clone() {
        len += inst.snapshot_len(id);
    }
    out.reserve(len);
    out.push_str(SNAPSHOT_HEADER);
    out.push('\n');
    for (name, d) in deployments {
        d.snapshot_line(out, name);
    }
    for (id, inst) in instances {
        inst.snapshot_line(out, id);
    }
}

/// The workflow runtime: deployed definitions plus running instances.
#[derive(Default)]
pub struct Runtime {
    pub(crate) deployments: BTreeMap<String, Arc<Deployment>>,
    pub(crate) instances: BTreeMap<InstanceId, Instance>,
    pub(crate) next_id: InstanceId,
    /// Journal events re-fired to (re)materialize cursors — replay work.
    /// Stays 0 in steady state; grows only on [`Runtime::restore`] and
    /// explicit [`Runtime::invalidate`].
    pub(crate) replayed: u64,
    /// The durability backend, if any. `None` (the default) keeps every
    /// path purely in-memory with zero overhead; with a store attached,
    /// every deploy, start, fire, and silent completion is appended
    /// *before* the in-memory commit (write-ahead discipline).
    pub(crate) store: Option<Arc<dyn Store>>,
    /// The logical clock (ms). Never ticks by itself: [`Runtime::advance`]
    /// moves it, and recovery restores it to the latest durable expiry
    /// watermark (`max` of replayed [`Record::TimerFire`] `at_ms`).
    pub(crate) clock_ms: u64,
    /// Pending timers across the fleet, keyed back to their instances.
    pub(crate) wheel: TimerWheel<(InstanceId, Symbol)>,
}

impl Runtime {
    /// An empty runtime.
    pub fn new() -> Runtime {
        Runtime::default()
    }

    /// An empty runtime persisting through `store`. Anything the store
    /// already holds is ignored — use [`Runtime::open`] to recover.
    pub fn with_store(store: Arc<dyn Store>) -> Runtime {
        Runtime {
            store: Some(store),
            ..Runtime::default()
        }
    }

    /// Recovers a runtime from everything `store` retained — the latest
    /// checkpoint snapshot first, then every post-checkpoint record in
    /// append order, each re-validated exactly like a live call (replayed
    /// fires count toward [`Runtime::replayed_steps`]). The store is
    /// attached only after replay, so recovery never re-appends its own
    /// input. Fails with [`RuntimeError::Store`] if the store cannot be
    /// read, or a replay-level error if its contents do not re-validate.
    pub fn open(store: Arc<dyn Store>) -> Result<Runtime, RuntimeError> {
        let replay = store
            .replay()
            .map_err(|e| RuntimeError::Store(e.to_string()))?;
        let mut rt = match &replay.snapshot {
            Some(snapshot) => Runtime::restore(snapshot)?,
            None => Runtime::new(),
        };
        // Arm-before-visible buffering: a TimerArm only takes effect
        // when its Start follows. A crash between the two appends
        // leaves an orphan arm, which simply never leaves this map.
        let mut buffered_arms: BTreeMap<InstanceId, Vec<(String, u64)>> = BTreeMap::new();
        for record in replay.records {
            match record {
                Record::Deploy { name, goal } => {
                    let goal = ctr_parser::parse_goal(&goal).map_err(|e| {
                        RuntimeError::Journal(format!("deploy record for `{name}`: {e}"))
                    })?;
                    rt.deploy_compiled(&name, goal)?;
                }
                Record::TimerArm { instance, timers } => {
                    buffered_arms.insert(instance, timers);
                }
                Record::Start { instance, workflow } => {
                    let arms = buffered_arms.remove(&instance).unwrap_or_default();
                    rt.adopt_instance(instance, &workflow, &arms)?;
                }
                Record::Events { instance, events } => {
                    for event in &events {
                        rt.fire(instance, event).map_err(|e| {
                            RuntimeError::Journal(format!(
                                "instance {instance}: replaying event `{event}`: {e}"
                            ))
                        })?;
                        rt.replayed += 1;
                    }
                }
                Record::TimerFire {
                    instance,
                    event,
                    at_ms,
                } => {
                    rt.replay_timer_fire(instance, &event, at_ms)?;
                    rt.replayed += 1;
                }
                Record::TimerCancel { instance, event } => {
                    rt.replay_timer_cancel(instance, &event);
                }
                Record::Complete { instance } => {
                    rt.try_complete(instance)?;
                }
            }
        }
        rt.store = Some(store);
        Ok(rt)
    }

    /// Compacts the attached store: freezes the current state as a text
    /// snapshot (the ordinary [`Runtime::snapshot`] bytes) and lets the
    /// store truncate every record the snapshot covers. Errors if no
    /// store is attached.
    pub fn checkpoint(&mut self) -> Result<(), RuntimeError> {
        let Some(store) = &self.store else {
            return Err(RuntimeError::Store(
                "no store attached to checkpoint into".to_owned(),
            ));
        };
        let mut out = String::new();
        render_snapshot(
            self.deployments.iter().map(|(n, d)| (n, &**d)),
            self.instances.iter().map(|(id, inst)| (*id, inst)),
            &mut out,
        );
        store
            .checkpoint(&out)
            .map_err(|e| RuntimeError::Store(e.to_string()))
    }

    /// Adopts an instance under a caller-chosen id — the recovery path
    /// for durable [`Record::Start`] records, which must reproduce the
    /// exact ids clients were given before the crash. `arms` carries
    /// the instance's buffered [`Record::TimerArm`] dues (absolute ms),
    /// re-armed here exactly as the pre-crash start armed them.
    fn adopt_instance(
        &mut self,
        id: InstanceId,
        workflow: &str,
        arms: &[(String, u64)],
    ) -> Result<(), RuntimeError> {
        let deployment = self
            .deployments
            .get(workflow)
            .ok_or_else(|| RuntimeError::UnknownWorkflow(workflow.to_owned()))?;
        if self.instances.contains_key(&id) {
            return Err(RuntimeError::Journal(format!(
                "duplicate start record for instance {id}"
            )));
        }
        let mut instance = Instance::new(workflow.to_owned(), Arc::clone(&deployment.program));
        for (name, due) in arms {
            let tick = Symbol::try_get(name).ok_or_else(|| {
                RuntimeError::Journal(format!(
                    "arm record for instance {id} references unknown timer event `{name}`"
                ))
            })?;
            let base = parse_tick(name).and_then(|t| match t.kind {
                TimerKind::Deadline => Symbol::try_get(t.base),
                TimerKind::After => None,
            });
            let token = self.wheel.arm(*due, (id, tick));
            instance.arm_timer(tick, *due, base, token);
        }
        self.instances.insert(id, instance);
        self.next_id = self.next_id.max(id + 1);
        Ok(())
    }

    /// Derived timer bookkeeping after events committed on an instance:
    /// a deadline whose base event fired is satisfied (disarmed), a
    /// tick that fired by any path disarms itself, and a completed
    /// instance drains every pending timer. None of these write a
    /// record — they are deterministic functions of the journaled
    /// events, so replay reproduces them exactly.
    fn settle_timers(&mut self, id: InstanceId, committed_from: usize) {
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        for token in inst.settled_tokens(committed_from) {
            self.wheel.cancel(token);
        }
    }

    /// Deploys a specification from its textual source. Compiles the
    /// graph, triggers, sub-workflows, and constraints once; inconsistent
    /// specifications are rejected outright (there would be nothing to
    /// schedule).
    pub fn deploy_source(&mut self, source: &str) -> Result<String, RuntimeError> {
        let spec =
            ctr_parser::parse_spec(source).map_err(|e| RuntimeError::Parse(e.to_string()))?;
        let name = spec.name.clone();
        let compiled = spec
            .compile()
            .map_err(|e| RuntimeError::Compile(e.to_string()))?;
        if !compiled.is_consistent() {
            return Err(RuntimeError::Inconsistent(name));
        }
        self.deploy_compiled(&name, compiled.goal)?;
        Ok(name)
    }

    /// Deploys an already-compiled goal under a name.
    ///
    /// Re-deploying a name only affects instances started afterwards:
    /// running instances keep (and share, via `Arc`) the program they
    /// were started with.
    pub fn deploy_compiled(&mut self, name: &str, compiled: Goal) -> Result<(), RuntimeError> {
        let deployment = Deployment::new(compiled)?;
        if let Some(store) = &self.store {
            store
                .append(&Record::Deploy {
                    name: name.to_owned(),
                    goal: deployment.rendered.clone(),
                })
                .map_err(|e| RuntimeError::Store(e.to_string()))?;
        }
        self.deployments
            .insert(name.to_owned(), Arc::new(deployment));
        Ok(())
    }

    /// Deployed workflow names.
    pub fn workflows(&self) -> Vec<String> {
        self.deployments.keys().cloned().collect()
    }

    /// Starts a new instance of a deployed workflow, materializing its
    /// cursor once and arming its timers at `clock + delay`. The cursor
    /// shares the deployment's compiled program.
    ///
    /// Durability order is **arm-before-visible**: the instance's
    /// [`Record::TimerArm`] goes to the store *before* its
    /// [`Record::Start`]. A crash between the two leaves an orphan arm,
    /// which recovery drops harmlessly; the reverse order could recover
    /// an instance whose deadlines were silently lost.
    pub fn start(&mut self, workflow: &str) -> Result<InstanceId, RuntimeError> {
        let deployment = Arc::clone(
            self.deployments
                .get(workflow)
                .ok_or_else(|| RuntimeError::UnknownWorkflow(workflow.to_owned()))?,
        );
        let mut instance = Instance::new(workflow.to_owned(), Arc::clone(&deployment.program));
        let id = self.next_id;
        if let Some(store) = &self.store {
            if !deployment.timers.is_empty() {
                store
                    .append(&Record::TimerArm {
                        instance: id,
                        timers: deployment
                            .timers
                            .iter()
                            .map(|t| {
                                (
                                    t.tick.as_str().to_owned(),
                                    self.clock_ms.saturating_add(t.delay_ms),
                                )
                            })
                            .collect(),
                    })
                    .map_err(|e| RuntimeError::Store(e.to_string()))?;
            }
            store
                .append(&Record::Start {
                    instance: id,
                    workflow: workflow.to_owned(),
                })
                .map_err(|e| RuntimeError::Store(e.to_string()))?;
        }
        for t in &deployment.timers {
            let due = self.clock_ms.saturating_add(t.delay_ms);
            let token = self.wheel.arm(due, (id, t.tick));
            instance.arm_timer(t.tick, due, t.base, token);
        }
        self.next_id = id + 1;
        self.instances.insert(id, instance);
        Ok(id)
    }

    /// Running and completed instance ids.
    pub fn instances(&self) -> Vec<InstanceId> {
        self.instances.keys().copied().collect()
    }

    fn instance(&self, id: InstanceId) -> Result<&Instance, RuntimeError> {
        self.instances
            .get(&id)
            .ok_or(RuntimeError::UnknownInstance(id))
    }

    /// Total journal events re-fired to (re)materialize cursors. Zero in
    /// steady state — `eligible`/`fire`/`try_complete` use the cached
    /// incremental cursor; only [`Runtime::restore`] and
    /// [`Runtime::invalidate`] replay.
    pub fn replayed_steps(&self) -> u64 {
        self.replayed
    }

    /// Discards the cached cursor of `id` and rebuilds it by replaying
    /// the journal from scratch — the crash-recovery code path, exposed
    /// so it can be exercised (and its equivalence with the incremental
    /// cursor asserted) directly. A journal the *current* deployment
    /// cannot replay (e.g. the name was re-deployed with an incompatible
    /// body) is a typed [`RuntimeError::Journal`] error and leaves the
    /// instance's cursor untouched.
    pub fn invalidate(&mut self, id: InstanceId) -> Result<(), RuntimeError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownInstance(id))?;
        let deployment = self
            .deployments
            .get(&inst.workflow)
            .ok_or_else(|| RuntimeError::UnknownWorkflow(inst.workflow.clone()))?;
        let replayed = inst.rebuild_cursor(Arc::clone(&deployment.program))?;
        self.replayed += replayed;
        Ok(())
    }

    /// The observable events eligible to fire now, deduplicated and
    /// sorted — the pro-active scheduler's answer to "what can happen
    /// next?" (§4). Reads the cached cursor: O(eligible), not O(journal).
    ///
    /// Allocates one `String` per name; hot polling loops should prefer
    /// [`Runtime::eligible_symbols`].
    pub fn eligible(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
        Ok(self.instance(id)?.eligible_names())
    }

    /// [`Runtime::eligible`] without the per-name allocations: returns
    /// interned [`Symbol`]s (same order — sorted by name, deduplicated).
    pub fn eligible_symbols(&self, id: InstanceId) -> Result<Vec<Symbol>, RuntimeError> {
        Ok(self.instance(id)?.eligible_symbols())
    }

    /// Fires an external event against an instance. Rejects events the
    /// compiled schedule does not allow at this stage — no run-time
    /// constraint checking, just structural eligibility. Advances the
    /// cached cursor in place: per-fire work is independent of the
    /// journal length.
    pub fn fire(&mut self, id: InstanceId, event: &str) -> Result<InstanceStatus, RuntimeError> {
        let store = self.store.as_deref();
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownInstance(id))?;
        let before = inst.journal.len();
        let result = inst.fire(id, event, store);
        if result.is_ok() {
            self.settle_timers(id, before);
        }
        result
    }

    /// Fires a batch of events against one instance in order, under a
    /// single instance resolution and a single journal extend.
    ///
    /// Partial-failure semantics: the batch stops at the first event that
    /// cannot fire — the committed prefix stays journaled (exactly the
    /// journal a sequence of individual [`Runtime::fire`] calls would
    /// have produced), the failing event reports
    /// [`FireOutcome::Rejected`], and the remaining events report
    /// [`FireOutcome::Skipped`] untried. Returns one [`FireOutcome`] per
    /// input event; `Err` only when the instance id itself is unknown.
    pub fn fire_batch<S: AsRef<str>>(
        &mut self,
        id: InstanceId,
        events: &[S],
    ) -> Result<Vec<FireOutcome>, RuntimeError> {
        let store = self.store.as_deref();
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownInstance(id))?;
        let before = inst.journal.len();
        let result = inst.fire_batch(id, events, store);
        if result.is_ok() {
            self.settle_timers(id, before);
        }
        result
    }

    /// Tries to finish an instance through silent steps only (committing
    /// `∨`-branches made of bookkeeping, e.g. an optional tail that was
    /// compiled away). Returns the resulting status.
    pub fn try_complete(&mut self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
        let store = self.store.as_deref();
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownInstance(id))?;
        let result = inst.try_complete(id, store);
        if matches!(result, Ok(InstanceStatus::Completed)) {
            // A completed instance has no future: drain its timers.
            let len = self.instances.get(&id).map_or(0, |inst| inst.journal.len());
            self.settle_timers(id, len);
        }
        result
    }

    // --- Timers -------------------------------------------------------------

    /// The runtime's logical clock, in ms. Starts at zero and moves
    /// only through [`Runtime::advance`] — the runtime has no wall
    /// clock of its own, which keeps expiry deterministic under test.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Pending timers of an instance as `(tick event, absolute due ms)`
    /// pairs, sorted by tick name.
    pub fn pending_timers(&self, id: InstanceId) -> Result<Vec<(String, u64)>, RuntimeError> {
        let inst = self.instance(id)?;
        let mut out: Vec<(String, u64)> = inst
            .timers
            .iter()
            .map(|t| (t.tick.as_str().to_owned(), t.due))
            .collect();
        out.sort();
        Ok(out)
    }

    /// Total pending timers across the fleet — O(1) from the wheel.
    pub fn pending_timer_count(&self) -> usize {
        self.wheel.len()
    }

    /// The earliest pending due across all instances, as a lower bound
    /// usable for sleeping; `None` when nothing is armed.
    pub fn next_timer_due(&self) -> Option<u64> {
        self.wheel.next_due()
    }

    /// Advances the logical clock to `to_ms`, expiring every timer due
    /// on the way in deterministic `(due, instance, tick)` order. Each
    /// expired tick fires as an ordinary journal event, write-ahead as
    /// [`Record::TimerFire`]; a tick whose deadline was structurally
    /// satisfied without the derived disarm catching it resolves
    /// vacuously (journaled [`Record::TimerCancel`]). A clock already
    /// at or past `to_ms` is left alone. Returns the `(instance, tick)`
    /// pairs that fired.
    ///
    /// On a store error the failed expiry is re-armed untouched and the
    /// clock still reflects the timers already processed — a later
    /// advance retries exactly the unfired tail.
    pub fn advance(&mut self, to_ms: u64) -> Result<Vec<(InstanceId, String)>, RuntimeError> {
        let mut due_now = self.wheel.advance_to(to_ms);
        // Wheel order is (due, arm order); re-sort ties by (instance,
        // tick name) so expiry order is independent of arm history
        // (snapshot restore re-arms in sorted order, replay in journal
        // order — the fleet must expire identically either way).
        due_now.sort_by(|a, b| (a.0, a.1 .0, a.1 .1.as_str()).cmp(&(b.0, b.1 .0, b.1 .1.as_str())));
        let mut out = Vec::new();
        for i in 0..due_now.len() {
            let (due, (id, tick)) = due_now[i];
            let store = self.store.as_deref();
            let Some(inst) = self.instances.get_mut(&id) else {
                continue;
            };
            let Some(armed) = inst.take_timer(tick) else {
                continue; // disarmed earlier in this same batch
            };
            let before = inst.journal.len();
            match inst.fire_timer(id, tick, due, store) {
                Ok(TimerFired::Fired) => {
                    out.push((id, tick.as_str().to_owned()));
                    self.settle_timers(id, before);
                }
                Ok(TimerFired::Vacuous) => {}
                Err(e) => {
                    // Re-arm the failed expiry *and* the rest of the
                    // popped batch: the wheel no longer holds any of
                    // them, and their instance entries carry dead
                    // tokens — without this the unfired tail would
                    // silently never expire.
                    let token = self.wheel.arm(armed.due, (id, tick));
                    self.instances
                        .get_mut(&id)
                        .expect("instance still exists")
                        .arm_timer(tick, armed.due, armed.base, token);
                    for &(_, (id2, tick2)) in &due_now[i + 1..] {
                        let Some(inst) = self.instances.get_mut(&id2) else {
                            continue;
                        };
                        let Some(armed2) = inst.take_timer(tick2) else {
                            continue;
                        };
                        let token = self.wheel.arm(armed2.due, (id2, tick2));
                        self.instances
                            .get_mut(&id2)
                            .expect("instance still exists")
                            .arm_timer(tick2, armed2.due, armed2.base, token);
                    }
                    self.clock_ms = self.clock_ms.max(self.wheel.now());
                    return Err(e);
                }
            }
        }
        self.clock_ms = self.clock_ms.max(to_ms);
        Ok(out)
    }

    /// Explicitly disarms a pending timer by its tick event name,
    /// journaling [`Record::TimerCancel`] write-ahead. Unlike the
    /// derived disarms (deadline satisfied, instance completed), an API
    /// cancel is not reproducible from the event journal, so it must be
    /// its own record.
    pub fn cancel_timer(&mut self, id: InstanceId, event: &str) -> Result<(), RuntimeError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownInstance(id))?;
        let Some(tick) =
            Symbol::try_get(event).filter(|s| inst.timers.iter().any(|t| t.tick == *s))
        else {
            return Err(RuntimeError::UnknownTimer {
                instance: id,
                event: event.to_owned(),
            });
        };
        if let Some(store) = &self.store {
            store
                .append(&Record::TimerCancel {
                    instance: id,
                    event: event.to_owned(),
                })
                .map_err(|e| RuntimeError::Store(e.to_string()))?;
        }
        let armed = self
            .instances
            .get_mut(&id)
            .expect("checked above")
            .take_timer(tick)
            .expect("checked pending above");
        self.wheel.cancel(armed.token);
        Ok(())
    }

    /// Replays a durable [`Record::TimerFire`]: restores the clock
    /// watermark and fires the tick exactly as the pre-crash advance
    /// did.
    fn replay_timer_fire(
        &mut self,
        id: InstanceId,
        event: &str,
        at_ms: u64,
    ) -> Result<(), RuntimeError> {
        self.clock_ms = self.clock_ms.max(at_ms);
        let tick = Symbol::try_get(event).ok_or_else(|| {
            RuntimeError::Journal(format!(
                "timer fire for instance {id} references unknown event `{event}`"
            ))
        })?;
        let inst = self.instances.get_mut(&id).ok_or_else(|| {
            RuntimeError::Journal(format!("timer fire for unknown instance {id}"))
        })?;
        if let Some(armed) = inst.take_timer(tick) {
            self.wheel.cancel(armed.token);
        }
        let inst = self.instances.get_mut(&id).expect("checked above");
        let before = inst.journal.len();
        match inst.fire_timer(id, tick, at_ms, None)? {
            TimerFired::Fired => {
                self.settle_timers(id, before);
                Ok(())
            }
            TimerFired::Vacuous => Err(RuntimeError::Journal(format!(
                "instance {id}: replaying timer fire `{event}`: not eligible"
            ))),
        }
    }

    /// Replays a durable [`Record::TimerCancel`]. Lenient about an
    /// already-absent timer: the record may follow a derived disarm the
    /// event replay has reproduced on its own.
    fn replay_timer_cancel(&mut self, id: InstanceId, event: &str) {
        let Some(tick) = Symbol::try_get(event) else {
            return;
        };
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if let Some(armed) = inst.take_timer(tick) {
            self.wheel.cancel(armed.token);
        }
    }

    /// Enacts a deployed workflow with the given [`Enactor`]: dispatches
    /// activity handlers under the compiled schedule and returns the full
    /// [`EnactReport`] — committed trace, per-attempt outcomes and
    /// latencies, and (on abort) the typed error plus compensation plan.
    ///
    /// Enactment is **deployment-level**: it runs against the
    /// deployment's compiled program and does *not* create a journaled
    /// instance. An enactor may legitimately commit *silent* `∨`-branches
    /// (policy picks), and a silent commit is not an event — replaying
    /// the observable trace through `fire_event` on a fresh cursor could
    /// not reproduce it, which would break the journal-replay invariant
    /// every instance relies on. Callers that want a journaled record can
    /// [`Runtime::start`] an instance and [`Runtime::fire_batch`] the
    /// report's `completed` events, which the runtime then re-validates.
    pub fn enact(&self, workflow: &str, enactor: &Enactor) -> Result<EnactReport, RuntimeError> {
        let deployment = self
            .deployments
            .get(workflow)
            .ok_or_else(|| RuntimeError::UnknownWorkflow(workflow.to_owned()))?;
        Ok(enactor.run_report(&deployment.program))
    }

    /// The journal of fired events.
    pub fn journal(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
        Ok(self.instance(id)?.journal_names())
    }

    /// Instance status.
    pub fn status(&self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
        Ok(self.instance(id)?.status)
    }

    /// Completion check.
    pub fn is_complete(&self, id: InstanceId) -> Result<bool, RuntimeError> {
        Ok(self.instance(id)?.status == InstanceStatus::Completed)
    }

    // --- Snapshots ---------------------------------------------------------

    /// Serializes the whole runtime — deployments as compiled goals in
    /// the concrete syntax, instances as journals — into a line-based
    /// textual snapshot.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        self.snapshot_into(&mut out);
        out
    }

    /// [`Runtime::snapshot`] into a caller-owned buffer: the buffer is
    /// cleared, pre-sized from the deployment renders and journal
    /// lengths, and filled — so a loop snapshotting repeatedly (e.g.
    /// periodic compaction) reuses one allocation instead of growing a
    /// fresh `String` through repeated doublings each time.
    pub fn snapshot_into(&self, out: &mut String) {
        render_snapshot(
            self.deployments.iter().map(|(n, d)| (n, &**d)),
            self.instances.iter().map(|(id, inst)| (*id, inst)),
            out,
        );
    }

    /// Restores a runtime from a snapshot, re-validating every journal by
    /// replay.
    pub fn restore(snapshot: &str) -> Result<Runtime, RuntimeError> {
        let mut lines = snapshot.lines();
        if lines.next() != Some(SNAPSHOT_HEADER) {
            return Err(RuntimeError::Snapshot(
                "missing or unknown header".to_owned(),
            ));
        }
        let mut rt = Runtime::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("workflow ") {
                let (name, goal_text) = rest
                    .split_once(" := ")
                    .ok_or_else(|| RuntimeError::Snapshot(format!("bad workflow line: {line}")))?;
                let goal = ctr_parser::parse_goal(goal_text)
                    .map_err(|e| RuntimeError::Snapshot(e.to_string()))?;
                rt.deploy_compiled(name, goal)?;
            } else if let Some(rest) = line.strip_prefix("instance ") {
                let (head, journal_text) = rest
                    .split_once("]: ")
                    .or_else(|| rest.split_once("]:").map(|(h, _)| (h, "")))
                    .ok_or_else(|| RuntimeError::Snapshot(format!("bad instance line: {line}")))?;
                // head = "<id> of <workflow> [<status>"
                let mut parts = head.split_whitespace();
                let id: InstanceId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RuntimeError::Snapshot(format!("bad instance id: {line}")))?;
                let workflow = match (parts.next(), parts.next()) {
                    (Some("of"), Some(w)) => w.to_owned(),
                    _ => return Err(RuntimeError::Snapshot(format!("bad instance line: {line}"))),
                };
                let Some(deployment) = rt.deployments.get(&workflow) else {
                    return Err(RuntimeError::Snapshot(format!(
                        "instance {id} references unknown workflow `{workflow}`"
                    )));
                };
                rt.instances
                    .insert(id, Instance::new(workflow, Arc::clone(&deployment.program)));
                rt.next_id = rt.next_id.max(id + 1);
                // Replay through the public API so every journaled event
                // is re-validated. This is the one place cursors are
                // materialized by replay rather than advanced in place.
                for event in journal_text.split_whitespace() {
                    rt.fire(id, event)?;
                    rt.replayed += 1;
                }
                if head.ends_with("[completed") {
                    // Completion may have come from silent finishing.
                    rt.try_complete(id)?;
                }
            } else if let Some(rest) = line.strip_prefix("timer ") {
                // timer <instance> <tick> due <ms>
                let mut parts = rest.split_whitespace();
                let id: InstanceId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RuntimeError::Snapshot(format!("bad timer line: {line}")))?;
                let (name, due) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some(name), Some("due"), Some(due), None) => (
                        name,
                        due.parse::<u64>().map_err(|_| {
                            RuntimeError::Snapshot(format!("bad timer due: {line}"))
                        })?,
                    ),
                    _ => return Err(RuntimeError::Snapshot(format!("bad timer line: {line}"))),
                };
                let Some(inst) = rt.instances.get_mut(&id) else {
                    return Err(RuntimeError::Snapshot(format!(
                        "timer line references unknown instance {id}"
                    )));
                };
                // The tick was interned when the workflow goal parsed.
                let tick = Symbol::try_get(name).ok_or_else(|| {
                    RuntimeError::Snapshot(format!("timer line references unknown event `{name}`"))
                })?;
                let base = parse_tick(name).and_then(|t| match t.kind {
                    TimerKind::Deadline => Symbol::try_get(t.base),
                    TimerKind::After => None,
                });
                let token = rt.wheel.arm(due, (id, tick));
                inst.arm_timer(tick, due, base, token);
            } else {
                return Err(RuntimeError::Snapshot(format!("unrecognized line: {line}")));
            }
        }
        Ok(rt)
    }
}

/// First line of every snapshot; version-checks the format.
pub(crate) const SNAPSHOT_HEADER: &str = "ctr-runtime snapshot v1";

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::constraints::Constraint;

    const PAY: &str = r"
        workflow pay {
            graph invoice * (approve + reject) * file;
        }
    ";

    fn runtime_with_pay() -> Runtime {
        let mut rt = Runtime::new();
        rt.deploy_source(PAY).unwrap();
        rt
    }

    #[test]
    fn deploy_start_fire_complete() {
        let mut rt = runtime_with_pay();
        assert_eq!(rt.workflows(), vec!["pay".to_owned()]);
        let id = rt.start("pay").unwrap();
        assert_eq!(rt.eligible(id).unwrap(), vec!["invoice".to_owned()]);
        rt.fire(id, "invoice").unwrap();
        assert_eq!(
            rt.eligible(id).unwrap(),
            vec!["approve".to_owned(), "reject".to_owned()]
        );
        rt.fire(id, "reject").unwrap();
        assert_eq!(rt.fire(id, "file").unwrap(), InstanceStatus::Completed);
        assert!(rt.is_complete(id).unwrap());
        assert_eq!(rt.journal(id).unwrap(), vec!["invoice", "reject", "file"]);
    }

    #[test]
    fn ineligible_events_are_rejected_with_alternatives() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        let err = rt.fire(id, "file").unwrap_err();
        let RuntimeError::NotEligible { event, eligible } = err else {
            panic!("expected NotEligible");
        };
        assert_eq!(event, "file");
        assert_eq!(eligible, vec!["invoice".to_owned()]);
        // The failed fire left no trace in the journal.
        assert!(rt.journal(id).unwrap().is_empty());
    }

    #[test]
    fn firing_into_completed_instance_fails() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        for e in ["invoice", "approve", "file"] {
            rt.fire(id, e).unwrap();
        }
        assert_eq!(
            rt.fire(id, "invoice"),
            Err(RuntimeError::AlreadyComplete(id))
        );
    }

    #[test]
    fn inconsistent_specs_are_rejected_at_deploy() {
        let mut rt = Runtime::new();
        let err = rt
            .deploy_source("workflow bad { graph b * a; constraint before(a, b); }")
            .unwrap_err();
        assert_eq!(err, RuntimeError::Inconsistent("bad".to_owned()));
    }

    #[test]
    fn constraints_gate_eligibility_at_runtime() {
        // A compiled order constraint: the runtime refuses the late event
        // until its predecessor fired — with zero constraint checking.
        let mut rt = Runtime::new();
        let compiled = ctr::analysis::compile(
            &ctr::goal::conc(vec![Goal::atom("a"), Goal::atom("b")]),
            &[Constraint::order("a", "b")],
        )
        .unwrap();
        rt.deploy_compiled("ab", compiled.goal).unwrap();
        let id = rt.start("ab").unwrap();
        assert_eq!(rt.eligible(id).unwrap(), vec!["a".to_owned()]);
        assert!(matches!(
            rt.fire(id, "b"),
            Err(RuntimeError::NotEligible { .. })
        ));
        rt.fire(id, "a").unwrap();
        rt.fire(id, "b").unwrap();
        assert!(rt.is_complete(id).unwrap());
    }

    #[test]
    fn multiple_instances_progress_independently() {
        let mut rt = runtime_with_pay();
        let i1 = rt.start("pay").unwrap();
        let i2 = rt.start("pay").unwrap();
        rt.fire(i1, "invoice").unwrap();
        assert_eq!(rt.eligible(i2).unwrap(), vec!["invoice".to_owned()]);
        rt.fire(i1, "approve").unwrap();
        rt.fire(i2, "invoice").unwrap();
        rt.fire(i2, "reject").unwrap();
        assert_eq!(rt.journal(i1).unwrap(), vec!["invoice", "approve"]);
        assert_eq!(rt.journal(i2).unwrap(), vec!["invoice", "reject"]);
    }

    #[test]
    fn snapshot_round_trips_mid_flight() {
        let mut rt = runtime_with_pay();
        let i1 = rt.start("pay").unwrap();
        let i2 = rt.start("pay").unwrap();
        rt.fire(i1, "invoice").unwrap();
        rt.fire(i1, "approve").unwrap();
        rt.fire(i2, "invoice").unwrap();

        let snap = rt.snapshot();
        let restored = Runtime::restore(&snap).unwrap();
        assert_eq!(restored.workflows(), vec!["pay".to_owned()]);
        assert_eq!(restored.journal(i1).unwrap(), vec!["invoice", "approve"]);
        assert_eq!(restored.eligible(i1).unwrap(), vec!["file".to_owned()]);
        assert_eq!(
            restored.eligible(i2).unwrap(),
            vec!["approve".to_owned(), "reject".to_owned()]
        );
        // New instances allocate past the restored ids.
        let mut restored = restored;
        let i3 = restored.start("pay").unwrap();
        assert!(i3 > i2);
    }

    #[test]
    fn snapshot_round_trips_completed_instances() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        for e in ["invoice", "approve", "file"] {
            rt.fire(id, e).unwrap();
        }
        let restored = Runtime::restore(&rt.snapshot()).unwrap();
        assert!(restored.is_complete(id).unwrap());
    }

    #[test]
    fn snapshot_rejects_corruption() {
        assert!(Runtime::restore("bogus").is_err());
        assert!(
            Runtime::restore("ctr-runtime snapshot v1\ninstance 0 of ghost [running]: x").is_err()
        );
        // A journal that replay rejects.
        let mut rt = runtime_with_pay();
        rt.start("pay").unwrap();
        let snap = rt.snapshot().replace("[running]: ", "[running]: file");
        assert!(matches!(
            Runtime::restore(&snap),
            Err(RuntimeError::NotEligible { .. })
        ));
    }

    #[test]
    fn try_complete_finishes_silent_tails() {
        // a ⊗ (send-branch ∨ b): after a, the instance can finish without
        // another observable event.
        let goal = ctr::goal::seq(vec![
            Goal::atom("a"),
            ctr::goal::or(vec![Goal::Send(ctr::goal::Channel(0)), Goal::atom("b")]),
        ]);
        let mut rt = Runtime::new();
        rt.deploy_compiled("opt", goal).unwrap();
        let id = rt.start("opt").unwrap();
        rt.fire(id, "a").unwrap();
        assert_eq!(rt.status(id).unwrap(), InstanceStatus::Running);
        assert_eq!(rt.try_complete(id).unwrap(), InstanceStatus::Completed);
    }

    #[test]
    fn unknown_ids_and_names_error() {
        let mut rt = Runtime::new();
        assert_eq!(
            rt.start("ghost"),
            Err(RuntimeError::UnknownWorkflow("ghost".to_owned()))
        );
        assert_eq!(rt.eligible(42), Err(RuntimeError::UnknownInstance(42)));
        assert_eq!(rt.fire(42, "x"), Err(RuntimeError::UnknownInstance(42)));
    }

    #[test]
    fn fire_batch_matches_individual_fires() {
        // A full batch produces the same journal, statuses, and snapshot
        // as the same events fired one by one.
        let mut batched = runtime_with_pay();
        let mut single = runtime_with_pay();
        let ib = batched.start("pay").unwrap();
        let is_ = single.start("pay").unwrap();
        let events = ["invoice", "approve", "file"];
        let outcomes = batched.fire_batch(ib, &events).unwrap();
        let expected: Vec<FireOutcome> = events
            .iter()
            .map(|e| FireOutcome::Fired(single.fire(is_, e).unwrap()))
            .collect();
        assert_eq!(outcomes, expected);
        assert_eq!(
            outcomes.last(),
            Some(&FireOutcome::Fired(InstanceStatus::Completed))
        );
        assert_eq!(batched.snapshot(), single.snapshot());
    }

    #[test]
    fn fire_batch_journals_prefix_and_skips_suffix() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        // The second "invoice" is ineligible: the batch must stop there
        // with the first fire already committed.
        let outcomes = rt
            .fire_batch(id, &["invoice", "invoice", "approve", "file"])
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0], FireOutcome::Fired(InstanceStatus::Running));
        let FireOutcome::Rejected(RuntimeError::NotEligible { event, eligible }) = &outcomes[1]
        else {
            panic!("expected NotEligible, got {:?}", outcomes[1]);
        };
        assert_eq!(event, "invoice");
        assert_eq!(eligible, &["approve".to_owned(), "reject".to_owned()]);
        assert_eq!(outcomes[2], FireOutcome::Skipped);
        assert_eq!(outcomes[3], FireOutcome::Skipped);
        // Only the committed prefix reached the journal; the instance is
        // still usable afterwards.
        assert_eq!(rt.journal(id).unwrap(), vec!["invoice"]);
        rt.fire(id, "approve").unwrap();
        rt.fire(id, "file").unwrap();
        assert!(rt.is_complete(id).unwrap());
    }

    #[test]
    fn fire_batch_rejects_past_completion() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        let outcomes = rt
            .fire_batch(id, &["invoice", "approve", "file", "invoice"])
            .unwrap();
        assert_eq!(outcomes[2], FireOutcome::Fired(InstanceStatus::Completed));
        assert_eq!(
            outcomes[3],
            FireOutcome::Rejected(RuntimeError::AlreadyComplete(id))
        );
    }

    #[test]
    fn fire_batch_unknown_instance_is_err() {
        let mut rt = runtime_with_pay();
        assert_eq!(
            rt.fire_batch(42, &["invoice"]),
            Err(RuntimeError::UnknownInstance(42))
        );
    }

    #[test]
    fn empty_fire_batch_is_a_no_op() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        let outcomes = rt.fire_batch::<&str>(id, &[]).unwrap();
        assert!(outcomes.is_empty());
        assert!(rt.journal(id).unwrap().is_empty());
    }

    #[test]
    fn rejected_unknown_event_names_do_not_grow_the_interner() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        // Submitting never-interned names must not permanently intern
        // them: a hostile client pumping random names would otherwise
        // grow the process-global append-only table without bound. Other
        // tests intern concurrently, so retry the count comparison
        // instead of demanding a quiescent table.
        for attempt in 0.. {
            let hostile = format!("zz_hostile_name_{attempt}_never_interned");
            let before = ctr::symbol::Symbol::interned_count();
            let err = rt.fire(id, &hostile).unwrap_err();
            let batch = rt.fire_batch(id, &[hostile.as_str()]).unwrap();
            let after = ctr::symbol::Symbol::interned_count();
            assert!(matches!(err, RuntimeError::NotEligible { .. }));
            assert!(matches!(
                batch[0],
                FireOutcome::Rejected(RuntimeError::NotEligible { .. })
            ));
            assert_eq!(
                ctr::symbol::Symbol::try_get(&hostile),
                None,
                "rejected name must not be interned"
            );
            if before == after {
                break;
            }
            assert!(attempt < 5, "interner table would not settle");
        }
        // The instance is untouched and still fires known events.
        rt.fire(id, "invoice").unwrap();
    }

    #[test]
    fn mem_store_path_is_bit_identical_to_storeless() {
        // Attaching MemStore must not change a single observable byte:
        // same ids, same outcomes, same snapshot.
        let mut stored = Runtime::with_store(Arc::new(MemStore::new()));
        let mut plain = Runtime::new();
        for rt in [&mut stored, &mut plain] {
            rt.deploy_source(PAY).unwrap();
        }
        for _ in 0..3 {
            assert_eq!(stored.start("pay").unwrap(), plain.start("pay").unwrap());
        }
        let events = ["invoice", "approve", "file"];
        assert_eq!(
            stored.fire_batch(0, &events).unwrap(),
            plain.fire_batch(0, &events).unwrap()
        );
        assert_eq!(
            stored.fire(1, "invoice").unwrap(),
            plain.fire(1, "invoice").unwrap()
        );
        assert_eq!(stored.snapshot(), plain.snapshot());
        let stats = stored.store_stats().unwrap();
        assert_eq!(
            stats.appends,
            1 + 3 + 2,
            "deploy + starts + two event groups"
        );
        assert_eq!(stats.events, 4);
        assert_eq!(stats.max_group, 3);
        assert_eq!(plain.store_stats(), None);
    }

    #[test]
    fn open_recovers_the_full_fleet_from_records() {
        let store = Arc::new(MemStore::new());
        let snap_before;
        {
            let mut rt = Runtime::with_store(Arc::clone(&store) as Arc<dyn ctr_store::Store>);
            rt.deploy_source(PAY).unwrap();
            let i1 = rt.start("pay").unwrap();
            let i2 = rt.start("pay").unwrap();
            rt.fire_batch(i1, &["invoice", "approve", "file"]).unwrap();
            rt.fire(i2, "invoice").unwrap();
            snap_before = rt.snapshot();
        }
        // "Crash": drop the runtime, recover purely from the store.
        let rt = Runtime::open(store).unwrap();
        assert_eq!(rt.snapshot(), snap_before);
        assert!(rt.is_complete(0).unwrap());
        assert_eq!(rt.replayed_steps(), 4, "recovery replays every fire");
        // Recovered runtimes keep persisting: new ids continue the line.
        let mut rt = rt;
        assert_eq!(rt.start("pay").unwrap(), 2);
    }

    #[test]
    fn open_recovers_silent_completion_via_complete_record() {
        let goal = ctr::goal::seq(vec![
            Goal::atom("a"),
            ctr::goal::or(vec![Goal::Send(ctr::goal::Channel(0)), Goal::atom("b")]),
        ]);
        let store = Arc::new(MemStore::new());
        {
            let mut rt = Runtime::with_store(Arc::clone(&store) as Arc<dyn ctr_store::Store>);
            rt.deploy_compiled("opt", goal).unwrap();
            let id = rt.start("opt").unwrap();
            rt.fire(id, "a").unwrap();
            assert_eq!(rt.try_complete(id).unwrap(), InstanceStatus::Completed);
        }
        let rt = Runtime::open(store).unwrap();
        assert!(rt.is_complete(0).unwrap(), "silent completion survives");
    }

    #[test]
    fn checkpoint_compacts_and_reopens_identically() {
        let store = Arc::new(MemStore::new());
        let mut rt = Runtime::with_store(Arc::clone(&store) as Arc<dyn ctr_store::Store>);
        rt.deploy_source(PAY).unwrap();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        rt.checkpoint().unwrap();
        // Post-checkpoint traffic lands as fresh records.
        rt.fire(id, "approve").unwrap();
        let snap = rt.snapshot();
        drop(rt);
        let replay = store.replay().unwrap();
        assert!(replay.snapshot.is_some(), "checkpoint installed a baseline");
        assert_eq!(replay.records.len(), 1, "only the post-checkpoint fire");
        let rt = Runtime::open(store).unwrap();
        assert_eq!(rt.snapshot(), snap);
    }

    #[test]
    fn storeless_checkpoint_is_a_typed_error() {
        let mut rt = runtime_with_pay();
        assert!(matches!(rt.checkpoint(), Err(RuntimeError::Store(_))));
    }

    #[test]
    fn diverged_journal_rebuild_is_a_typed_error_not_a_debug_assert() {
        // Re-deploy an incompatible body, then ask the instance to
        // rebuild from its (now unreplayable) journal: this used to be
        // a debug_assert! — a panic in debug builds, silent cursor
        // corruption in release. It must be a typed Journal error.
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        rt.fire(id, "approve").unwrap();
        rt.deploy_source("workflow pay { graph other * things; }")
            .unwrap();
        let err = rt.invalidate(id).unwrap_err();
        assert!(matches!(err, RuntimeError::Journal(_)), "got {err:?}");
        // The failed rebuild left the old cursor untouched and usable.
        assert_eq!(rt.eligible(id).unwrap(), vec!["file".to_owned()]);
        rt.fire(id, "file").unwrap();
        assert!(rt.is_complete(id).unwrap());
    }

    #[test]
    fn snapshot_into_reuses_the_buffer() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        let expected = rt.snapshot();
        let mut buf = String::from("stale content from a previous use");
        rt.snapshot_into(&mut buf);
        assert_eq!(buf, expected);
        let cap = buf.capacity();
        rt.snapshot_into(&mut buf);
        assert_eq!(buf, expected);
        assert_eq!(buf.capacity(), cap, "steady state allocates nothing");
    }

    const TIMED: &str = r"
        workflow timed {
            graph invoice * approve * file;
            after(approve, 30s);
        }
    ";

    const GUARDED: &str = r"
        workflow guarded {
            graph invoice * approve;
            deadline(approve, 1h);
        }
    ";

    #[test]
    fn after_gates_its_event_until_the_clock_advances() {
        let mut rt = Runtime::new();
        rt.deploy_source(TIMED).unwrap();
        let id = rt.start("timed").unwrap();
        assert_eq!(
            rt.pending_timers(id).unwrap(),
            vec![("approve@after30000".to_owned(), 30_000)]
        );
        assert_eq!(rt.pending_timer_count(), 1);
        rt.fire(id, "invoice").unwrap();
        // The gate holds: approve is not eligible (and the tick is
        // internal, never listed).
        assert!(matches!(
            rt.fire(id, "approve"),
            Err(RuntimeError::NotEligible { .. })
        ));
        assert!(rt.eligible(id).unwrap().is_empty());
        assert!(rt.advance(29_999).unwrap().is_empty());
        let fired = rt.advance(30_000).unwrap();
        assert_eq!(fired, vec![(id, "approve@after30000".to_owned())]);
        assert_eq!(rt.clock_ms(), 30_000);
        assert!(rt.pending_timers(id).unwrap().is_empty());
        assert_eq!(rt.eligible(id).unwrap(), vec!["approve".to_owned()]);
        rt.fire(id, "approve").unwrap();
        rt.fire(id, "file").unwrap();
        assert!(rt.is_complete(id).unwrap());
    }

    #[test]
    fn deadline_satisfied_by_its_base_event_disarms() {
        let mut rt = Runtime::new();
        rt.deploy_source(GUARDED).unwrap();
        let id = rt.start("guarded").unwrap();
        assert_eq!(
            rt.pending_timers(id).unwrap(),
            vec![("approve@deadline3600000".to_owned(), 3_600_000)]
        );
        rt.fire(id, "invoice").unwrap();
        rt.fire(id, "approve").unwrap();
        // Derived disarm: the base event fired, the deadline is gone.
        assert!(rt.pending_timers(id).unwrap().is_empty());
        assert_eq!(rt.pending_timer_count(), 0);
        assert!(rt.advance(4_000_000).unwrap().is_empty());
        // The watchdog or-branch finishes silently.
        assert_eq!(rt.try_complete(id).unwrap(), InstanceStatus::Completed);
    }

    #[test]
    fn deadline_expiry_fires_the_tick_as_a_journal_event() {
        let mut rt = Runtime::new();
        rt.deploy_source(GUARDED).unwrap();
        let id = rt.start("guarded").unwrap();
        rt.fire(id, "invoice").unwrap();
        let fired = rt.advance(3_600_000).unwrap();
        assert_eq!(fired, vec![(id, "approve@deadline3600000".to_owned())]);
        assert_eq!(
            rt.journal(id).unwrap(),
            vec!["invoice", "approve@deadline3600000"]
        );
        // Expiry records the missed deadline; the instance itself
        // continues — approve can still happen (late).
        assert_eq!(rt.status(id).unwrap(), InstanceStatus::Running);
        rt.fire(id, "approve").unwrap();
        assert_eq!(rt.try_complete(id).unwrap(), InstanceStatus::Completed);
    }

    #[test]
    fn completion_drains_pending_timers() {
        let mut rt = Runtime::new();
        rt.deploy_source(GUARDED).unwrap();
        let id = rt.start("guarded").unwrap();
        rt.fire(id, "invoice").unwrap();
        rt.fire(id, "approve").unwrap();
        rt.try_complete(id).unwrap();
        assert_eq!(rt.pending_timer_count(), 0);
        assert_eq!(rt.next_timer_due(), None);
    }

    #[test]
    fn cancel_timer_disarms_and_rejects_unknowns() {
        let mut rt = Runtime::new();
        rt.deploy_source(TIMED).unwrap();
        let id = rt.start("timed").unwrap();
        assert_eq!(
            rt.cancel_timer(id, "nope"),
            Err(RuntimeError::UnknownTimer {
                instance: id,
                event: "nope".to_owned()
            })
        );
        rt.cancel_timer(id, "approve@after30000").unwrap();
        assert!(rt.pending_timers(id).unwrap().is_empty());
        assert_eq!(
            rt.cancel_timer(id, "approve@after30000"),
            Err(RuntimeError::UnknownTimer {
                instance: id,
                event: "approve@after30000".to_owned()
            })
        );
        // The gate never opens now; the timer is simply gone.
        assert!(rt.advance(100_000).unwrap().is_empty());
    }

    #[test]
    fn timer_snapshot_round_trips_and_expires_identically() {
        let mut rt = Runtime::new();
        rt.deploy_source(TIMED).unwrap();
        rt.deploy_source(GUARDED).unwrap();
        let t = rt.start("timed").unwrap();
        let g = rt.start("guarded").unwrap();
        rt.fire(t, "invoice").unwrap();
        rt.fire(g, "invoice").unwrap();
        let snap = rt.snapshot();
        assert!(
            snap.contains("timer 0 approve@after30000 due 30000"),
            "{snap}"
        );
        let mut restored = Runtime::restore(&snap).unwrap();
        assert_eq!(restored.snapshot(), snap, "snapshot round-trips");
        assert_eq!(
            restored.pending_timers(t).unwrap(),
            rt.pending_timers(t).unwrap()
        );
        // Both expire the same way.
        assert_eq!(
            rt.advance(4_000_000).unwrap(),
            restored.advance(4_000_000).unwrap()
        );
        assert_eq!(rt.snapshot(), restored.snapshot());
    }

    #[test]
    fn timer_arm_record_precedes_start_and_recovers() {
        let store = Arc::new(MemStore::new());
        let snap_before;
        {
            let mut rt = Runtime::with_store(Arc::clone(&store) as Arc<dyn ctr_store::Store>);
            rt.deploy_source(TIMED).unwrap();
            let id = rt.start("timed").unwrap();
            rt.fire(id, "invoice").unwrap();
            snap_before = rt.snapshot();
        }
        // Arm-before-visible on the wire: TimerArm strictly before
        // Start for the same instance.
        let records = store.replay().unwrap().records;
        let arm = records
            .iter()
            .position(|r| matches!(r, Record::TimerArm { .. }))
            .expect("arm record present");
        let start = records
            .iter()
            .position(|r| matches!(r, Record::Start { .. }))
            .expect("start record present");
        assert!(arm < start, "arm-before-visible: {records:?}");
        let mut rt = Runtime::open(store).unwrap();
        assert_eq!(rt.snapshot(), snap_before);
        assert_eq!(
            rt.pending_timers(0).unwrap(),
            vec![("approve@after30000".to_owned(), 30_000)]
        );
        // The recovered wheel still expires.
        let fired = rt.advance(30_000).unwrap();
        assert_eq!(fired, vec![(0, "approve@after30000".to_owned())]);
    }

    #[test]
    fn timer_fire_records_replay_with_clock_watermark() {
        let store = Arc::new(MemStore::new());
        let snap_before;
        {
            let mut rt = Runtime::with_store(Arc::clone(&store) as Arc<dyn ctr_store::Store>);
            rt.deploy_source(GUARDED).unwrap();
            let id = rt.start("guarded").unwrap();
            rt.fire(id, "invoice").unwrap();
            let fired = rt.advance(3_700_000).unwrap();
            assert_eq!(fired.len(), 1);
            snap_before = rt.snapshot();
        }
        let rt = Runtime::open(store).unwrap();
        assert_eq!(rt.snapshot(), snap_before);
        assert_eq!(
            rt.clock_ms(),
            3_600_000,
            "clock restored to the durable expiry watermark"
        );
        assert_eq!(rt.pending_timer_count(), 0);
        assert_eq!(
            rt.journal(0).unwrap(),
            vec!["invoice", "approve@deadline3600000"]
        );
    }

    #[test]
    fn cancel_records_replay_and_checkpoint_keeps_timer_lines() {
        let store = Arc::new(MemStore::new());
        let mut rt = Runtime::with_store(Arc::clone(&store) as Arc<dyn ctr_store::Store>);
        rt.deploy_source(TIMED).unwrap();
        rt.deploy_source(GUARDED).unwrap();
        let t = rt.start("timed").unwrap();
        let g = rt.start("guarded").unwrap();
        rt.cancel_timer(t, "approve@after30000").unwrap();
        rt.checkpoint().unwrap();
        rt.fire(g, "invoice").unwrap();
        let snap = rt.snapshot();
        drop(rt);
        let replay = store.replay().unwrap();
        let baseline = replay.snapshot.expect("checkpoint installed");
        assert!(
            baseline.contains("timer 1 approve@deadline3600000 due 3600000"),
            "{baseline}"
        );
        // The goal text still names the tick event; only the armed-timer
        // line must be gone.
        assert!(!baseline.contains("timer 0 "), "cancelled timer gone");
        let mut rt = Runtime::open(store).unwrap();
        assert_eq!(rt.snapshot(), snap);
        assert!(rt.pending_timers(t).unwrap().is_empty());
        let fired = rt.advance(3_600_000).unwrap();
        assert_eq!(fired, vec![(g, "approve@deadline3600000".to_owned())]);
    }

    #[test]
    fn every_timers_stagger_and_fire_in_order() {
        let mut rt = Runtime::new();
        rt.deploy_source(
            "workflow poller { graph connect * repeat(poll, 1, 2) * done; every(poll, 5s); }",
        )
        .unwrap();
        let id = rt.start("poller").unwrap();
        let pending = rt.pending_timers(id).unwrap();
        assert_eq!(
            pending,
            vec![
                ("poll@1@after5000".to_owned(), 5_000),
                ("poll@2@after10000".to_owned(), 10_000)
            ]
        );
        rt.fire(id, "connect").unwrap();
        let fired = rt.advance(20_000).unwrap();
        assert_eq!(
            fired,
            vec![
                (id, "poll@1@after5000".to_owned()),
                (id, "poll@2@after10000".to_owned())
            ],
            "both gates open in period order"
        );
        rt.fire(id, "poll@1").unwrap();
        rt.fire(id, "poll@2").unwrap();
        rt.fire(id, "done").unwrap();
        assert!(rt.is_complete(id).unwrap());
    }

    #[test]
    fn runtime_enact_runs_a_deployment_and_reports() {
        let rt = runtime_with_pay();
        let order = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut enactor = Enactor::new();
        for e in ["invoice", "approve", "reject", "file"] {
            let log = std::sync::Arc::clone(&order);
            enactor.register(
                e,
                Box::new(move |atom| {
                    log.lock().unwrap().push(atom.to_string());
                    Ok(())
                }),
            );
        }
        let report = rt.enact("pay", &enactor).unwrap();
        assert!(report.is_success());
        assert_eq!(report.completed.len(), 3, "invoice, one branch, file");
        let completed: Vec<String> = report.completed.iter().map(|s| s.to_string()).collect();
        assert_eq!(*order.lock().unwrap(), completed);
        assert!(matches!(
            rt.enact("ghost", &enactor).unwrap_err(),
            RuntimeError::UnknownWorkflow(name) if name == "ghost"
        ));
    }
}
