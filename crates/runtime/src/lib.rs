#![warn(missing_docs)]

//! # ctr-runtime — workflow instance management
//!
//! The operational layer a workflow management system puts on top of the
//! paper's machinery: **deploy** a specification (compiling it once,
//! rejecting inconsistent ones — Theorem 5.8 at deployment time), **start**
//! instances, **fire** events as the outside world reports them, and
//! **snapshot/restore** everything as plain text.
//!
//! Instances are **event-sourced**: the only persistent state is the
//! journal of fired events. Each instance holds a **cached incremental
//! cursor** over its deployment's `Arc`-shared compiled [`Program`]:
//! the cursor is materialized once at [`Runtime::start`], advanced in
//! place on every [`Runtime::fire`], and rebuilt by journal replay only
//! on [`Runtime::restore`] — so steady-state work per fire is constant
//! in the journal length ([`Runtime::replayed_steps`] counts the replay
//! work and stays at zero outside recovery). The cache is sound because
//! replay is deterministic: the compiled scheduler resolves
//! event-to-node ambiguity by a fixed rule, so replaying the journal
//! from scratch always reproduces the cached cursor state. This keeps
//! crash recovery trivial (replay) and the snapshot format
//! human-readable: the compiled goal in its concrete syntax plus one
//! journal line per instance.
//!
//! ```
//! use ctr_runtime::Runtime;
//!
//! let mut rt = Runtime::new();
//! rt.deploy_source("workflow pay { graph invoice * (approve + reject) * file; }").unwrap();
//! let id = rt.start("pay").unwrap();
//! assert_eq!(rt.eligible(id).unwrap(), vec!["invoice".to_owned()]);
//! rt.fire(id, "invoice").unwrap();
//! rt.fire(id, "approve").unwrap();
//! rt.fire(id, "file").unwrap();
//! assert!(rt.is_complete(id).unwrap());
//! ```

pub mod enact;
pub mod shared;
pub mod stats;

use ctr::goal::Goal;
use ctr::symbol::Symbol;
use ctr_engine::scheduler::{Program, Scheduler};
use ctr_store::Record;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

pub use ctr_store::{Durability, MemStore, Store, StoreError, StoreStats, WalOptions, WalStore};
pub use enact::{
    AttemptOutcome, AttemptRecord, Backoff, ChoicePolicy, EnactError, EnactReport, Enactor, Fault,
    FaultPlan, Handler, RetryPolicy,
};
pub use shared::{CoarseRuntime, SharedRuntime};
pub use stats::{simulate, simulate_par, Simulation};

/// Identifier of a running instance.
pub type InstanceId = u64;

/// Errors from the runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// The specification failed to parse.
    Parse(String),
    /// The specification failed to compile (e.g. not unique-event).
    Compile(String),
    /// The specification is inconsistent: it was rejected at deployment.
    Inconsistent(String),
    /// No workflow deployed under this name.
    UnknownWorkflow(String),
    /// No instance with this id.
    UnknownInstance(InstanceId),
    /// The event is not eligible at the instance's current stage.
    NotEligible {
        /// The rejected event.
        event: String,
        /// What the pro-active scheduler would accept instead.
        eligible: Vec<String>,
    },
    /// The instance already completed.
    AlreadyComplete(InstanceId),
    /// A snapshot could not be decoded.
    Snapshot(String),
    /// The durable store rejected an operation (I/O failure or
    /// unrecoverable corruption). The in-memory state it guards is
    /// rolled back: a failed persist never leaves a half-committed fire.
    Store(String),
    /// A journal failed to replay against its deployed program — the
    /// journal (or the program it was validated against) is corrupt.
    Journal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Parse(e) => write!(f, "parse error: {e}"),
            RuntimeError::Compile(e) => write!(f, "compile error: {e}"),
            RuntimeError::Inconsistent(name) => {
                write!(
                    f,
                    "workflow `{name}` is inconsistent and cannot be deployed"
                )
            }
            RuntimeError::UnknownWorkflow(name) => write!(f, "no workflow named `{name}`"),
            RuntimeError::UnknownInstance(id) => write!(f, "no instance #{id}"),
            RuntimeError::NotEligible { event, eligible } => write!(
                f,
                "event `{event}` is not eligible now (eligible: {})",
                eligible.join(", ")
            ),
            RuntimeError::AlreadyComplete(id) => write!(f, "instance #{id} already completed"),
            RuntimeError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            RuntimeError::Store(e) => write!(f, "store error: {e}"),
            RuntimeError::Journal(e) => write!(f, "journal error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Lifecycle of an instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstanceStatus {
    /// Events remain to fire.
    Running,
    /// The workflow ran to completion.
    Completed,
}

impl fmt::Display for InstanceStatus {
    /// The snapshot's status tag: `running` / `completed`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InstanceStatus::Running => "running",
            InstanceStatus::Completed => "completed",
        })
    }
}

/// Per-event result of a batched fire ([`Runtime::fire_batch`],
/// [`SharedRuntime::fire_batch`], [`SharedRuntime::fire_many`]).
///
/// A batch commits its events in order and stops at the first failure:
/// the committed prefix is journaled exactly as if fired individually,
/// the failing event reports why, and everything after it is skipped
/// untried. The outcome vector always has one entry per input event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FireOutcome {
    /// The event fired; the instance's status immediately after it.
    Fired(InstanceStatus),
    /// The event was rejected (not eligible, instance already complete,
    /// or unknown instance in [`SharedRuntime::fire_many`]); the batch
    /// stopped here.
    Rejected(RuntimeError),
    /// A preceding event of the same instance's batch failed; this one
    /// was never attempted.
    Skipped,
}

pub(crate) struct Deployment {
    /// The compiled goal rendered once in its concrete syntax — the
    /// exact bytes both the snapshot line and the durable deploy record
    /// use. Caching the render keeps snapshots (which compaction puts
    /// on a hot-ish path) from re-walking the goal tree per call.
    pub(crate) rendered: String,
    /// The scheduling arena, shared (`Arc`) with every instance cursor.
    pub(crate) program: Arc<Program>,
}

impl Deployment {
    /// Compiles a goal into a deployment, caching its rendered text.
    pub(crate) fn new(compiled: Goal) -> Result<Deployment, RuntimeError> {
        let program =
            Program::compile(&compiled).map_err(|e| RuntimeError::Compile(e.to_string()))?;
        Ok(Deployment {
            rendered: compiled.to_string(),
            program: Arc::new(program),
        })
    }

    /// Appends this deployment's snapshot line. Both runtimes serialize
    /// through here, which is what keeps their formats byte-identical.
    pub(crate) fn snapshot_line(&self, out: &mut String, name: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "workflow {name} := {}", self.rendered);
    }

    /// Bytes [`Deployment::snapshot_line`] will append for `name`.
    pub(crate) fn snapshot_len(&self, name: &str) -> usize {
        "workflow  := \n".len() + name.len() + self.rendered.len()
    }
}

/// One running instance: the journal (sole persistent state) plus the
/// cached cursor. All per-instance operations live here so the
/// single-threaded [`Runtime`] and the sharded [`SharedRuntime`] run the
/// exact same logic — the latter merely wraps each `Instance` in its own
/// lock.
pub(crate) struct Instance {
    pub(crate) workflow: String,
    pub(crate) journal: Vec<Symbol>,
    pub(crate) status: InstanceStatus,
    /// The program this instance pinned at start — also held by
    /// `cursor`, kept separately so the store-failure rollback path can
    /// rebuild the cursor without resolving the deployment registry.
    pub(crate) program: Arc<Program>,
    /// Cached cursor over the deployment's program: always equal to the
    /// state obtained by replaying `journal` against a fresh scheduler
    /// (replay is deterministic), but maintained incrementally.
    pub(crate) cursor: Scheduler<Arc<Program>>,
}

impl Instance {
    /// A fresh instance of `workflow`, materializing its cursor once.
    pub(crate) fn new(workflow: String, program: Arc<Program>) -> Instance {
        let cursor = Scheduler::new(Arc::clone(&program));
        let status = if cursor.is_complete() {
            InstanceStatus::Completed
        } else {
            InstanceStatus::Running
        };
        Instance {
            workflow,
            journal: Vec::new(),
            status,
            program,
            cursor,
        }
    }

    /// Fires one event; see [`Runtime::fire`]. With a store attached
    /// this is write-ahead: the event record must be durable before the
    /// in-memory journal commits, and a failed persist rolls the cursor
    /// back (by replaying the unchanged journal) so nothing half-fires.
    pub(crate) fn fire(
        &mut self,
        id: InstanceId,
        event: &str,
        store: Option<&dyn Store>,
    ) -> Result<InstanceStatus, RuntimeError> {
        if self.status == InstanceStatus::Completed {
            return Err(RuntimeError::AlreadyComplete(id));
        }
        // Non-interning lookup: event names come from clients, and a name
        // that was never interned cannot be in any deployed program — it
        // is rejected without permanently growing the global symbol
        // table on behalf of unknown (possibly hostile) input.
        let Some(symbol) = Symbol::try_get(event) else {
            return Err(RuntimeError::NotEligible {
                event: event.to_owned(),
                eligible: self.eligible_names(),
            });
        };
        // A failed `fire_event` leaves the cursor untouched, so the
        // cache stays valid on the error path.
        if !self.cursor.fire_event(symbol) {
            return Err(RuntimeError::NotEligible {
                event: event.to_owned(),
                eligible: self.eligible_names(),
            });
        }
        if let Some(store) = store {
            let record = Record::Events {
                instance: id,
                events: vec![event.to_owned()],
            };
            if let Err(e) = store.append(&record) {
                self.rebuild_cursor(Arc::clone(&self.program))?;
                return Err(RuntimeError::Store(e.to_string()));
            }
        }
        self.journal.push(symbol);
        if self.cursor.is_complete() {
            self.status = InstanceStatus::Completed;
        }
        Ok(self.status)
    }

    /// Fires a batch of events in order, stopping at the first failure;
    /// see [`Runtime::fire_batch`]. The committed prefix reaches the
    /// journal through a single `extend` — and, with a store attached,
    /// a single durable append: the whole batch is one group commit
    /// (one fsync on the WAL backend). If that append fails, the batch
    /// commits **nothing** — the cursor is rolled back by replay, the
    /// first event reports [`RuntimeError::Store`], and the rest are
    /// [`FireOutcome::Skipped`]. `Err` is reserved for a rollback that
    /// itself finds the journal unreplayable.
    pub(crate) fn fire_batch<S: AsRef<str>>(
        &mut self,
        id: InstanceId,
        events: &[S],
        store: Option<&dyn Store>,
    ) -> Result<Vec<FireOutcome>, RuntimeError> {
        let status_before = self.status;
        let mut outcomes = Vec::with_capacity(events.len());
        let mut committed: Vec<Symbol> = Vec::with_capacity(events.len());
        for event in events {
            if matches!(
                outcomes.last(),
                Some(FireOutcome::Rejected(_) | FireOutcome::Skipped)
            ) {
                outcomes.push(FireOutcome::Skipped);
                continue;
            }
            let event = event.as_ref();
            if self.status == InstanceStatus::Completed {
                outcomes.push(FireOutcome::Rejected(RuntimeError::AlreadyComplete(id)));
                continue;
            }
            // Same non-interning lookup as `fire`: unknown names reject
            // without growing the symbol table.
            let symbol = Symbol::try_get(event).filter(|&s| self.cursor.fire_event(s));
            let Some(symbol) = symbol else {
                outcomes.push(FireOutcome::Rejected(RuntimeError::NotEligible {
                    event: event.to_owned(),
                    eligible: self.eligible_names(),
                }));
                continue;
            };
            committed.push(symbol);
            if self.cursor.is_complete() {
                self.status = InstanceStatus::Completed;
            }
            outcomes.push(FireOutcome::Fired(self.status));
        }
        if let Some(store) = store {
            if !committed.is_empty() {
                let record = Record::Events {
                    instance: id,
                    events: committed.iter().map(|s| s.as_str().to_owned()).collect(),
                };
                if let Err(e) = store.append(&record) {
                    self.rebuild_cursor(Arc::clone(&self.program))?;
                    self.status = status_before;
                    let mut failed = Vec::with_capacity(events.len());
                    failed.push(FireOutcome::Rejected(RuntimeError::Store(e.to_string())));
                    failed.resize(events.len(), FireOutcome::Skipped);
                    return Ok(failed);
                }
            }
        }
        self.journal.extend(committed);
        Ok(outcomes)
    }

    /// Fires several independent *runs* (sub-batches) against this
    /// instance, each with [`Instance::fire_batch`] semantics — a
    /// failure stops its own run (rest [`FireOutcome::Skipped`]) but
    /// never the following runs, exactly as if the runs had been
    /// submitted as separate `fire_batch` calls back to back. The
    /// difference is durability traffic: all committed events of the
    /// whole burst reach the store through **one** append (one group
    /// commit on the WAL backend) instead of one per run.
    ///
    /// The burst is consequently one commit unit: if the append fails,
    /// *every* run rolls back (cursor rebuilt by replay, status
    /// restored) and every run reports `Rejected(Store)` on its first
    /// event with the rest `Skipped` — nothing was acknowledged, so no
    /// caller can have observed the discarded prefix. `Err` is reserved
    /// for a rollback that itself finds the journal unreplayable.
    pub(crate) fn fire_runs<S: AsRef<str>>(
        &mut self,
        id: InstanceId,
        runs: &[&[S]],
        store: Option<&dyn Store>,
    ) -> Result<Vec<Vec<FireOutcome>>, RuntimeError> {
        let status_before = self.status;
        let journal_before = self.journal.len();
        let mut outcomes: Vec<Vec<FireOutcome>> = Vec::with_capacity(runs.len());
        let mut committed: Vec<Symbol> = Vec::new();
        for events in runs {
            let mut run = Vec::with_capacity(events.len());
            for event in *events {
                if matches!(
                    run.last(),
                    Some(FireOutcome::Rejected(_) | FireOutcome::Skipped)
                ) {
                    run.push(FireOutcome::Skipped);
                    continue;
                }
                let event = event.as_ref();
                if self.status == InstanceStatus::Completed {
                    run.push(FireOutcome::Rejected(RuntimeError::AlreadyComplete(id)));
                    continue;
                }
                let symbol = Symbol::try_get(event).filter(|&s| self.cursor.fire_event(s));
                let Some(symbol) = symbol else {
                    run.push(FireOutcome::Rejected(RuntimeError::NotEligible {
                        event: event.to_owned(),
                        eligible: self.eligible_names(),
                    }));
                    continue;
                };
                committed.push(symbol);
                // Later runs see the committed prefix immediately — the
                // in-memory journal is extended run by run so a mid-burst
                // snapshot or rollback always has the true event list.
                self.journal.push(symbol);
                if self.cursor.is_complete() {
                    self.status = InstanceStatus::Completed;
                }
                run.push(FireOutcome::Fired(self.status));
            }
            outcomes.push(run);
        }
        if let Some(store) = store {
            if !committed.is_empty() {
                let record = Record::Events {
                    instance: id,
                    events: committed.iter().map(|s| s.as_str().to_owned()).collect(),
                };
                if let Err(e) = store.append(&record) {
                    self.journal.truncate(journal_before);
                    self.rebuild_cursor(Arc::clone(&self.program))?;
                    self.status = status_before;
                    let failed = runs
                        .iter()
                        .map(|events| {
                            let mut run = Vec::with_capacity(events.len());
                            if !events.is_empty() {
                                run.push(FireOutcome::Rejected(RuntimeError::Store(e.to_string())));
                                run.resize(events.len(), FireOutcome::Skipped);
                            }
                            run
                        })
                        .collect();
                    return Ok(failed);
                }
            }
        }
        Ok(outcomes)
    }

    /// Probes silent completion; see [`Runtime::try_complete`]. A
    /// silent completion is the one status change replaying the event
    /// journal cannot reproduce, so with a store attached it persists
    /// its own [`Record::Complete`] — durably, before the status flips.
    pub(crate) fn try_complete(
        &mut self,
        id: InstanceId,
        store: Option<&dyn Store>,
    ) -> Result<InstanceStatus, RuntimeError> {
        // Probe on a clone: silent advances are NOT journaled, so they
        // must not leak into the cached cursor either — the cache always
        // mirrors exactly what journal replay would produce. A silent
        // *choice* is re-resolved after restore, so completion is
        // recorded in the status instead.
        let mut probe = self.cursor.clone();
        loop {
            if probe.is_complete() {
                if self.status != InstanceStatus::Completed {
                    if let Some(store) = store {
                        store
                            .append(&Record::Complete { instance: id })
                            .map_err(|e| RuntimeError::Store(e.to_string()))?;
                    }
                    self.status = InstanceStatus::Completed;
                }
                return Ok(InstanceStatus::Completed);
            }
            let eligible = probe.eligible();
            let Some(silent) = eligible.iter().find(|c| !c.observable) else {
                return Ok(self.status);
            };
            probe.fire(silent.node);
        }
    }

    /// Observable eligible events, deduplicated and sorted by name —
    /// allocation-free apart from the returned `Vec` (symbols resolve
    /// without copying).
    pub(crate) fn eligible_symbols(&self) -> Vec<Symbol> {
        let mut events: Vec<Symbol> = self
            .cursor
            .eligible()
            .iter()
            .filter_map(|c| self.cursor.program().event(c.node))
            .filter_map(ctr::term::Atom::as_event)
            .collect();
        events.sort_unstable_by_key(|s| s.as_str());
        events.dedup();
        events
    }

    /// [`Instance::eligible_symbols`], materialized as owned strings.
    pub(crate) fn eligible_names(&self) -> Vec<String> {
        self.eligible_symbols()
            .into_iter()
            .map(|s| s.as_str().to_owned())
            .collect()
    }

    /// The journal as owned strings.
    pub(crate) fn journal_names(&self) -> Vec<String> {
        self.journal.iter().map(|s| s.as_str().to_owned()).collect()
    }

    /// Appends this instance's snapshot line (shared serialization path;
    /// see [`Deployment::snapshot_line`]). Writes the journal symbols
    /// straight into `out` — no intermediate `Vec` or `join` allocation
    /// per instance, which matters once compaction snapshots a large
    /// fleet on the hot path.
    pub(crate) fn snapshot_line(&self, out: &mut String, id: InstanceId) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "instance {id} of {} [{}]: ",
            self.workflow, self.status
        );
        for (i, event) in self.journal.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(event.as_str());
        }
        out.push('\n');
    }

    /// Bytes [`Instance::snapshot_line`] will append for `id` (the
    /// status is sized at its longer variant; a one-byte-per-instance
    /// overshoot is fine for a reserve hint).
    pub(crate) fn snapshot_len(&self, id: InstanceId) -> usize {
        let id_digits = if id == 0 { 1 } else { id.ilog10() as usize + 1 };
        "instance  of  [completed]: \n".len()
            + id_digits
            + self.workflow.len()
            + self
                .journal
                .iter()
                .map(|s| s.as_str().len() + 1)
                .sum::<usize>()
    }

    /// Rebuilds the cursor by replaying the journal against `program`,
    /// re-pinning the instance to it; returns the number of replayed
    /// events. A journal that no longer replays — corrupt storage, or a
    /// program that does not match the one the journal was validated
    /// against — is a typed [`RuntimeError::Journal`] error, and the
    /// instance keeps its previous cursor untouched. (This used to be a
    /// `debug_assert!`, i.e. silent cursor corruption in release builds;
    /// with journals coming back from disk it must be a real error.)
    pub(crate) fn rebuild_cursor(&mut self, program: Arc<Program>) -> Result<u64, RuntimeError> {
        let mut cursor = Scheduler::new(Arc::clone(&program));
        for &event in &self.journal {
            if !cursor.fire_event(event) {
                return Err(RuntimeError::Journal(format!(
                    "replay diverged: journaled event `{}` is not eligible under the deployed program",
                    event.as_str()
                )));
            }
        }
        self.program = program;
        self.cursor = cursor;
        Ok(self.journal.len() as u64)
    }
}

/// Renders the canonical snapshot text into `out`, clearing it first —
/// the single serialization path under [`Runtime::snapshot`],
/// [`SharedRuntime::snapshot`], and both checkpoints, which is what
/// keeps their bytes identical. The buffer is pre-sized in one counting
/// pass, so a caller reusing one `String` across snapshots settles into
/// a single steady-state allocation.
pub(crate) fn render_snapshot<'a, D, I>(deployments: D, instances: I, out: &mut String)
where
    D: Iterator<Item = (&'a String, &'a Deployment)> + Clone,
    I: Iterator<Item = (InstanceId, &'a Instance)> + Clone,
{
    out.clear();
    let mut len = SNAPSHOT_HEADER.len() + 1;
    for (name, d) in deployments.clone() {
        len += d.snapshot_len(name);
    }
    for (id, inst) in instances.clone() {
        len += inst.snapshot_len(id);
    }
    out.reserve(len);
    out.push_str(SNAPSHOT_HEADER);
    out.push('\n');
    for (name, d) in deployments {
        d.snapshot_line(out, name);
    }
    for (id, inst) in instances {
        inst.snapshot_line(out, id);
    }
}

/// The workflow runtime: deployed definitions plus running instances.
#[derive(Default)]
pub struct Runtime {
    pub(crate) deployments: BTreeMap<String, Arc<Deployment>>,
    pub(crate) instances: BTreeMap<InstanceId, Instance>,
    pub(crate) next_id: InstanceId,
    /// Journal events re-fired to (re)materialize cursors — replay work.
    /// Stays 0 in steady state; grows only on [`Runtime::restore`] and
    /// explicit [`Runtime::invalidate`].
    pub(crate) replayed: u64,
    /// The durability backend, if any. `None` (the default) keeps every
    /// path purely in-memory with zero overhead; with a store attached,
    /// every deploy, start, fire, and silent completion is appended
    /// *before* the in-memory commit (write-ahead discipline).
    pub(crate) store: Option<Arc<dyn Store>>,
}

impl Runtime {
    /// An empty runtime.
    pub fn new() -> Runtime {
        Runtime::default()
    }

    /// An empty runtime persisting through `store`. Anything the store
    /// already holds is ignored — use [`Runtime::open`] to recover.
    pub fn with_store(store: Arc<dyn Store>) -> Runtime {
        Runtime {
            store: Some(store),
            ..Runtime::default()
        }
    }

    /// Recovers a runtime from everything `store` retained — the latest
    /// checkpoint snapshot first, then every post-checkpoint record in
    /// append order, each re-validated exactly like a live call (replayed
    /// fires count toward [`Runtime::replayed_steps`]). The store is
    /// attached only after replay, so recovery never re-appends its own
    /// input. Fails with [`RuntimeError::Store`] if the store cannot be
    /// read, or a replay-level error if its contents do not re-validate.
    pub fn open(store: Arc<dyn Store>) -> Result<Runtime, RuntimeError> {
        let replay = store
            .replay()
            .map_err(|e| RuntimeError::Store(e.to_string()))?;
        let mut rt = match &replay.snapshot {
            Some(snapshot) => Runtime::restore(snapshot)?,
            None => Runtime::new(),
        };
        for record in replay.records {
            match record {
                Record::Deploy { name, goal } => {
                    let goal = ctr_parser::parse_goal(&goal).map_err(|e| {
                        RuntimeError::Journal(format!("deploy record for `{name}`: {e}"))
                    })?;
                    rt.deploy_compiled(&name, goal)?;
                }
                Record::Start { instance, workflow } => {
                    rt.adopt_instance(instance, &workflow)?;
                }
                Record::Events { instance, events } => {
                    for event in &events {
                        rt.fire(instance, event).map_err(|e| {
                            RuntimeError::Journal(format!(
                                "instance {instance}: replaying event `{event}`: {e}"
                            ))
                        })?;
                        rt.replayed += 1;
                    }
                }
                Record::Complete { instance } => {
                    rt.try_complete(instance)?;
                }
            }
        }
        rt.store = Some(store);
        Ok(rt)
    }

    /// Compacts the attached store: freezes the current state as a text
    /// snapshot (the ordinary [`Runtime::snapshot`] bytes) and lets the
    /// store truncate every record the snapshot covers. Errors if no
    /// store is attached.
    pub fn checkpoint(&mut self) -> Result<(), RuntimeError> {
        let Some(store) = &self.store else {
            return Err(RuntimeError::Store(
                "no store attached to checkpoint into".to_owned(),
            ));
        };
        let mut out = String::new();
        render_snapshot(
            self.deployments.iter().map(|(n, d)| (n, &**d)),
            self.instances.iter().map(|(id, inst)| (*id, inst)),
            &mut out,
        );
        store
            .checkpoint(&out)
            .map_err(|e| RuntimeError::Store(e.to_string()))
    }

    /// Adopts an instance under a caller-chosen id — the recovery path
    /// for durable [`Record::Start`] records, which must reproduce the
    /// exact ids clients were given before the crash.
    fn adopt_instance(&mut self, id: InstanceId, workflow: &str) -> Result<(), RuntimeError> {
        let deployment = self
            .deployments
            .get(workflow)
            .ok_or_else(|| RuntimeError::UnknownWorkflow(workflow.to_owned()))?;
        if self.instances.contains_key(&id) {
            return Err(RuntimeError::Journal(format!(
                "duplicate start record for instance {id}"
            )));
        }
        let instance = Instance::new(workflow.to_owned(), Arc::clone(&deployment.program));
        self.instances.insert(id, instance);
        self.next_id = self.next_id.max(id + 1);
        Ok(())
    }

    /// Deploys a specification from its textual source. Compiles the
    /// graph, triggers, sub-workflows, and constraints once; inconsistent
    /// specifications are rejected outright (there would be nothing to
    /// schedule).
    pub fn deploy_source(&mut self, source: &str) -> Result<String, RuntimeError> {
        let spec =
            ctr_parser::parse_spec(source).map_err(|e| RuntimeError::Parse(e.to_string()))?;
        let name = spec.name.clone();
        let compiled = spec
            .compile()
            .map_err(|e| RuntimeError::Compile(e.to_string()))?;
        if !compiled.is_consistent() {
            return Err(RuntimeError::Inconsistent(name));
        }
        self.deploy_compiled(&name, compiled.goal)?;
        Ok(name)
    }

    /// Deploys an already-compiled goal under a name.
    ///
    /// Re-deploying a name only affects instances started afterwards:
    /// running instances keep (and share, via `Arc`) the program they
    /// were started with.
    pub fn deploy_compiled(&mut self, name: &str, compiled: Goal) -> Result<(), RuntimeError> {
        let deployment = Deployment::new(compiled)?;
        if let Some(store) = &self.store {
            store
                .append(&Record::Deploy {
                    name: name.to_owned(),
                    goal: deployment.rendered.clone(),
                })
                .map_err(|e| RuntimeError::Store(e.to_string()))?;
        }
        self.deployments
            .insert(name.to_owned(), Arc::new(deployment));
        Ok(())
    }

    /// Deployed workflow names.
    pub fn workflows(&self) -> Vec<String> {
        self.deployments.keys().cloned().collect()
    }

    /// Starts a new instance of a deployed workflow, materializing its
    /// cursor once. The cursor shares the deployment's compiled program.
    pub fn start(&mut self, workflow: &str) -> Result<InstanceId, RuntimeError> {
        let deployment = self
            .deployments
            .get(workflow)
            .ok_or_else(|| RuntimeError::UnknownWorkflow(workflow.to_owned()))?;
        let instance = Instance::new(workflow.to_owned(), Arc::clone(&deployment.program));
        let id = self.next_id;
        if let Some(store) = &self.store {
            store
                .append(&Record::Start {
                    instance: id,
                    workflow: workflow.to_owned(),
                })
                .map_err(|e| RuntimeError::Store(e.to_string()))?;
        }
        self.next_id = id + 1;
        self.instances.insert(id, instance);
        Ok(id)
    }

    /// Running and completed instance ids.
    pub fn instances(&self) -> Vec<InstanceId> {
        self.instances.keys().copied().collect()
    }

    fn instance(&self, id: InstanceId) -> Result<&Instance, RuntimeError> {
        self.instances
            .get(&id)
            .ok_or(RuntimeError::UnknownInstance(id))
    }

    /// Total journal events re-fired to (re)materialize cursors. Zero in
    /// steady state — `eligible`/`fire`/`try_complete` use the cached
    /// incremental cursor; only [`Runtime::restore`] and
    /// [`Runtime::invalidate`] replay.
    pub fn replayed_steps(&self) -> u64 {
        self.replayed
    }

    /// Discards the cached cursor of `id` and rebuilds it by replaying
    /// the journal from scratch — the crash-recovery code path, exposed
    /// so it can be exercised (and its equivalence with the incremental
    /// cursor asserted) directly. A journal the *current* deployment
    /// cannot replay (e.g. the name was re-deployed with an incompatible
    /// body) is a typed [`RuntimeError::Journal`] error and leaves the
    /// instance's cursor untouched.
    pub fn invalidate(&mut self, id: InstanceId) -> Result<(), RuntimeError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownInstance(id))?;
        let deployment = self
            .deployments
            .get(&inst.workflow)
            .ok_or_else(|| RuntimeError::UnknownWorkflow(inst.workflow.clone()))?;
        let replayed = inst.rebuild_cursor(Arc::clone(&deployment.program))?;
        self.replayed += replayed;
        Ok(())
    }

    /// The observable events eligible to fire now, deduplicated and
    /// sorted — the pro-active scheduler's answer to "what can happen
    /// next?" (§4). Reads the cached cursor: O(eligible), not O(journal).
    ///
    /// Allocates one `String` per name; hot polling loops should prefer
    /// [`Runtime::eligible_symbols`].
    pub fn eligible(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
        Ok(self.instance(id)?.eligible_names())
    }

    /// [`Runtime::eligible`] without the per-name allocations: returns
    /// interned [`Symbol`]s (same order — sorted by name, deduplicated).
    pub fn eligible_symbols(&self, id: InstanceId) -> Result<Vec<Symbol>, RuntimeError> {
        Ok(self.instance(id)?.eligible_symbols())
    }

    /// Fires an external event against an instance. Rejects events the
    /// compiled schedule does not allow at this stage — no run-time
    /// constraint checking, just structural eligibility. Advances the
    /// cached cursor in place: per-fire work is independent of the
    /// journal length.
    pub fn fire(&mut self, id: InstanceId, event: &str) -> Result<InstanceStatus, RuntimeError> {
        let store = self.store.as_deref();
        self.instances
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownInstance(id))?
            .fire(id, event, store)
    }

    /// Fires a batch of events against one instance in order, under a
    /// single instance resolution and a single journal extend.
    ///
    /// Partial-failure semantics: the batch stops at the first event that
    /// cannot fire — the committed prefix stays journaled (exactly the
    /// journal a sequence of individual [`Runtime::fire`] calls would
    /// have produced), the failing event reports
    /// [`FireOutcome::Rejected`], and the remaining events report
    /// [`FireOutcome::Skipped`] untried. Returns one [`FireOutcome`] per
    /// input event; `Err` only when the instance id itself is unknown.
    pub fn fire_batch<S: AsRef<str>>(
        &mut self,
        id: InstanceId,
        events: &[S],
    ) -> Result<Vec<FireOutcome>, RuntimeError> {
        let store = self.store.as_deref();
        self.instances
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownInstance(id))?
            .fire_batch(id, events, store)
    }

    /// Tries to finish an instance through silent steps only (committing
    /// `∨`-branches made of bookkeeping, e.g. an optional tail that was
    /// compiled away). Returns the resulting status.
    pub fn try_complete(&mut self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
        let store = self.store.as_deref();
        self.instances
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownInstance(id))?
            .try_complete(id, store)
    }

    /// Enacts a deployed workflow with the given [`Enactor`]: dispatches
    /// activity handlers under the compiled schedule and returns the full
    /// [`EnactReport`] — committed trace, per-attempt outcomes and
    /// latencies, and (on abort) the typed error plus compensation plan.
    ///
    /// Enactment is **deployment-level**: it runs against the
    /// deployment's compiled program and does *not* create a journaled
    /// instance. An enactor may legitimately commit *silent* `∨`-branches
    /// (policy picks), and a silent commit is not an event — replaying
    /// the observable trace through `fire_event` on a fresh cursor could
    /// not reproduce it, which would break the journal-replay invariant
    /// every instance relies on. Callers that want a journaled record can
    /// [`Runtime::start`] an instance and [`Runtime::fire_batch`] the
    /// report's `completed` events, which the runtime then re-validates.
    pub fn enact(&self, workflow: &str, enactor: &Enactor) -> Result<EnactReport, RuntimeError> {
        let deployment = self
            .deployments
            .get(workflow)
            .ok_or_else(|| RuntimeError::UnknownWorkflow(workflow.to_owned()))?;
        Ok(enactor.run_report(&deployment.program))
    }

    /// The journal of fired events.
    pub fn journal(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
        Ok(self.instance(id)?.journal_names())
    }

    /// Instance status.
    pub fn status(&self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
        Ok(self.instance(id)?.status)
    }

    /// Completion check.
    pub fn is_complete(&self, id: InstanceId) -> Result<bool, RuntimeError> {
        Ok(self.instance(id)?.status == InstanceStatus::Completed)
    }

    // --- Snapshots ---------------------------------------------------------

    /// Serializes the whole runtime — deployments as compiled goals in
    /// the concrete syntax, instances as journals — into a line-based
    /// textual snapshot.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        self.snapshot_into(&mut out);
        out
    }

    /// [`Runtime::snapshot`] into a caller-owned buffer: the buffer is
    /// cleared, pre-sized from the deployment renders and journal
    /// lengths, and filled — so a loop snapshotting repeatedly (e.g.
    /// periodic compaction) reuses one allocation instead of growing a
    /// fresh `String` through repeated doublings each time.
    pub fn snapshot_into(&self, out: &mut String) {
        render_snapshot(
            self.deployments.iter().map(|(n, d)| (n, &**d)),
            self.instances.iter().map(|(id, inst)| (*id, inst)),
            out,
        );
    }

    /// Restores a runtime from a snapshot, re-validating every journal by
    /// replay.
    pub fn restore(snapshot: &str) -> Result<Runtime, RuntimeError> {
        let mut lines = snapshot.lines();
        if lines.next() != Some(SNAPSHOT_HEADER) {
            return Err(RuntimeError::Snapshot(
                "missing or unknown header".to_owned(),
            ));
        }
        let mut rt = Runtime::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("workflow ") {
                let (name, goal_text) = rest
                    .split_once(" := ")
                    .ok_or_else(|| RuntimeError::Snapshot(format!("bad workflow line: {line}")))?;
                let goal = ctr_parser::parse_goal(goal_text)
                    .map_err(|e| RuntimeError::Snapshot(e.to_string()))?;
                rt.deploy_compiled(name, goal)?;
            } else if let Some(rest) = line.strip_prefix("instance ") {
                let (head, journal_text) = rest
                    .split_once("]: ")
                    .or_else(|| rest.split_once("]:").map(|(h, _)| (h, "")))
                    .ok_or_else(|| RuntimeError::Snapshot(format!("bad instance line: {line}")))?;
                // head = "<id> of <workflow> [<status>"
                let mut parts = head.split_whitespace();
                let id: InstanceId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RuntimeError::Snapshot(format!("bad instance id: {line}")))?;
                let workflow = match (parts.next(), parts.next()) {
                    (Some("of"), Some(w)) => w.to_owned(),
                    _ => return Err(RuntimeError::Snapshot(format!("bad instance line: {line}"))),
                };
                let Some(deployment) = rt.deployments.get(&workflow) else {
                    return Err(RuntimeError::Snapshot(format!(
                        "instance {id} references unknown workflow `{workflow}`"
                    )));
                };
                rt.instances
                    .insert(id, Instance::new(workflow, Arc::clone(&deployment.program)));
                rt.next_id = rt.next_id.max(id + 1);
                // Replay through the public API so every journaled event
                // is re-validated. This is the one place cursors are
                // materialized by replay rather than advanced in place.
                for event in journal_text.split_whitespace() {
                    rt.fire(id, event)?;
                    rt.replayed += 1;
                }
                if head.ends_with("[completed") {
                    // Completion may have come from silent finishing.
                    rt.try_complete(id)?;
                }
            } else {
                return Err(RuntimeError::Snapshot(format!("unrecognized line: {line}")));
            }
        }
        Ok(rt)
    }
}

/// First line of every snapshot; version-checks the format.
pub(crate) const SNAPSHOT_HEADER: &str = "ctr-runtime snapshot v1";

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::constraints::Constraint;

    const PAY: &str = r"
        workflow pay {
            graph invoice * (approve + reject) * file;
        }
    ";

    fn runtime_with_pay() -> Runtime {
        let mut rt = Runtime::new();
        rt.deploy_source(PAY).unwrap();
        rt
    }

    #[test]
    fn deploy_start_fire_complete() {
        let mut rt = runtime_with_pay();
        assert_eq!(rt.workflows(), vec!["pay".to_owned()]);
        let id = rt.start("pay").unwrap();
        assert_eq!(rt.eligible(id).unwrap(), vec!["invoice".to_owned()]);
        rt.fire(id, "invoice").unwrap();
        assert_eq!(
            rt.eligible(id).unwrap(),
            vec!["approve".to_owned(), "reject".to_owned()]
        );
        rt.fire(id, "reject").unwrap();
        assert_eq!(rt.fire(id, "file").unwrap(), InstanceStatus::Completed);
        assert!(rt.is_complete(id).unwrap());
        assert_eq!(rt.journal(id).unwrap(), vec!["invoice", "reject", "file"]);
    }

    #[test]
    fn ineligible_events_are_rejected_with_alternatives() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        let err = rt.fire(id, "file").unwrap_err();
        let RuntimeError::NotEligible { event, eligible } = err else {
            panic!("expected NotEligible");
        };
        assert_eq!(event, "file");
        assert_eq!(eligible, vec!["invoice".to_owned()]);
        // The failed fire left no trace in the journal.
        assert!(rt.journal(id).unwrap().is_empty());
    }

    #[test]
    fn firing_into_completed_instance_fails() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        for e in ["invoice", "approve", "file"] {
            rt.fire(id, e).unwrap();
        }
        assert_eq!(
            rt.fire(id, "invoice"),
            Err(RuntimeError::AlreadyComplete(id))
        );
    }

    #[test]
    fn inconsistent_specs_are_rejected_at_deploy() {
        let mut rt = Runtime::new();
        let err = rt
            .deploy_source("workflow bad { graph b * a; constraint before(a, b); }")
            .unwrap_err();
        assert_eq!(err, RuntimeError::Inconsistent("bad".to_owned()));
    }

    #[test]
    fn constraints_gate_eligibility_at_runtime() {
        // A compiled order constraint: the runtime refuses the late event
        // until its predecessor fired — with zero constraint checking.
        let mut rt = Runtime::new();
        let compiled = ctr::analysis::compile(
            &ctr::goal::conc(vec![Goal::atom("a"), Goal::atom("b")]),
            &[Constraint::order("a", "b")],
        )
        .unwrap();
        rt.deploy_compiled("ab", compiled.goal).unwrap();
        let id = rt.start("ab").unwrap();
        assert_eq!(rt.eligible(id).unwrap(), vec!["a".to_owned()]);
        assert!(matches!(
            rt.fire(id, "b"),
            Err(RuntimeError::NotEligible { .. })
        ));
        rt.fire(id, "a").unwrap();
        rt.fire(id, "b").unwrap();
        assert!(rt.is_complete(id).unwrap());
    }

    #[test]
    fn multiple_instances_progress_independently() {
        let mut rt = runtime_with_pay();
        let i1 = rt.start("pay").unwrap();
        let i2 = rt.start("pay").unwrap();
        rt.fire(i1, "invoice").unwrap();
        assert_eq!(rt.eligible(i2).unwrap(), vec!["invoice".to_owned()]);
        rt.fire(i1, "approve").unwrap();
        rt.fire(i2, "invoice").unwrap();
        rt.fire(i2, "reject").unwrap();
        assert_eq!(rt.journal(i1).unwrap(), vec!["invoice", "approve"]);
        assert_eq!(rt.journal(i2).unwrap(), vec!["invoice", "reject"]);
    }

    #[test]
    fn snapshot_round_trips_mid_flight() {
        let mut rt = runtime_with_pay();
        let i1 = rt.start("pay").unwrap();
        let i2 = rt.start("pay").unwrap();
        rt.fire(i1, "invoice").unwrap();
        rt.fire(i1, "approve").unwrap();
        rt.fire(i2, "invoice").unwrap();

        let snap = rt.snapshot();
        let restored = Runtime::restore(&snap).unwrap();
        assert_eq!(restored.workflows(), vec!["pay".to_owned()]);
        assert_eq!(restored.journal(i1).unwrap(), vec!["invoice", "approve"]);
        assert_eq!(restored.eligible(i1).unwrap(), vec!["file".to_owned()]);
        assert_eq!(
            restored.eligible(i2).unwrap(),
            vec!["approve".to_owned(), "reject".to_owned()]
        );
        // New instances allocate past the restored ids.
        let mut restored = restored;
        let i3 = restored.start("pay").unwrap();
        assert!(i3 > i2);
    }

    #[test]
    fn snapshot_round_trips_completed_instances() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        for e in ["invoice", "approve", "file"] {
            rt.fire(id, e).unwrap();
        }
        let restored = Runtime::restore(&rt.snapshot()).unwrap();
        assert!(restored.is_complete(id).unwrap());
    }

    #[test]
    fn snapshot_rejects_corruption() {
        assert!(Runtime::restore("bogus").is_err());
        assert!(
            Runtime::restore("ctr-runtime snapshot v1\ninstance 0 of ghost [running]: x").is_err()
        );
        // A journal that replay rejects.
        let mut rt = runtime_with_pay();
        rt.start("pay").unwrap();
        let snap = rt.snapshot().replace("[running]: ", "[running]: file");
        assert!(matches!(
            Runtime::restore(&snap),
            Err(RuntimeError::NotEligible { .. })
        ));
    }

    #[test]
    fn try_complete_finishes_silent_tails() {
        // a ⊗ (send-branch ∨ b): after a, the instance can finish without
        // another observable event.
        let goal = ctr::goal::seq(vec![
            Goal::atom("a"),
            ctr::goal::or(vec![Goal::Send(ctr::goal::Channel(0)), Goal::atom("b")]),
        ]);
        let mut rt = Runtime::new();
        rt.deploy_compiled("opt", goal).unwrap();
        let id = rt.start("opt").unwrap();
        rt.fire(id, "a").unwrap();
        assert_eq!(rt.status(id).unwrap(), InstanceStatus::Running);
        assert_eq!(rt.try_complete(id).unwrap(), InstanceStatus::Completed);
    }

    #[test]
    fn unknown_ids_and_names_error() {
        let mut rt = Runtime::new();
        assert_eq!(
            rt.start("ghost"),
            Err(RuntimeError::UnknownWorkflow("ghost".to_owned()))
        );
        assert_eq!(rt.eligible(42), Err(RuntimeError::UnknownInstance(42)));
        assert_eq!(rt.fire(42, "x"), Err(RuntimeError::UnknownInstance(42)));
    }

    #[test]
    fn fire_batch_matches_individual_fires() {
        // A full batch produces the same journal, statuses, and snapshot
        // as the same events fired one by one.
        let mut batched = runtime_with_pay();
        let mut single = runtime_with_pay();
        let ib = batched.start("pay").unwrap();
        let is_ = single.start("pay").unwrap();
        let events = ["invoice", "approve", "file"];
        let outcomes = batched.fire_batch(ib, &events).unwrap();
        let expected: Vec<FireOutcome> = events
            .iter()
            .map(|e| FireOutcome::Fired(single.fire(is_, e).unwrap()))
            .collect();
        assert_eq!(outcomes, expected);
        assert_eq!(
            outcomes.last(),
            Some(&FireOutcome::Fired(InstanceStatus::Completed))
        );
        assert_eq!(batched.snapshot(), single.snapshot());
    }

    #[test]
    fn fire_batch_journals_prefix_and_skips_suffix() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        // The second "invoice" is ineligible: the batch must stop there
        // with the first fire already committed.
        let outcomes = rt
            .fire_batch(id, &["invoice", "invoice", "approve", "file"])
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0], FireOutcome::Fired(InstanceStatus::Running));
        let FireOutcome::Rejected(RuntimeError::NotEligible { event, eligible }) = &outcomes[1]
        else {
            panic!("expected NotEligible, got {:?}", outcomes[1]);
        };
        assert_eq!(event, "invoice");
        assert_eq!(eligible, &["approve".to_owned(), "reject".to_owned()]);
        assert_eq!(outcomes[2], FireOutcome::Skipped);
        assert_eq!(outcomes[3], FireOutcome::Skipped);
        // Only the committed prefix reached the journal; the instance is
        // still usable afterwards.
        assert_eq!(rt.journal(id).unwrap(), vec!["invoice"]);
        rt.fire(id, "approve").unwrap();
        rt.fire(id, "file").unwrap();
        assert!(rt.is_complete(id).unwrap());
    }

    #[test]
    fn fire_batch_rejects_past_completion() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        let outcomes = rt
            .fire_batch(id, &["invoice", "approve", "file", "invoice"])
            .unwrap();
        assert_eq!(outcomes[2], FireOutcome::Fired(InstanceStatus::Completed));
        assert_eq!(
            outcomes[3],
            FireOutcome::Rejected(RuntimeError::AlreadyComplete(id))
        );
    }

    #[test]
    fn fire_batch_unknown_instance_is_err() {
        let mut rt = runtime_with_pay();
        assert_eq!(
            rt.fire_batch(42, &["invoice"]),
            Err(RuntimeError::UnknownInstance(42))
        );
    }

    #[test]
    fn empty_fire_batch_is_a_no_op() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        let outcomes = rt.fire_batch::<&str>(id, &[]).unwrap();
        assert!(outcomes.is_empty());
        assert!(rt.journal(id).unwrap().is_empty());
    }

    #[test]
    fn rejected_unknown_event_names_do_not_grow_the_interner() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        // Submitting never-interned names must not permanently intern
        // them: a hostile client pumping random names would otherwise
        // grow the process-global append-only table without bound. Other
        // tests intern concurrently, so retry the count comparison
        // instead of demanding a quiescent table.
        for attempt in 0.. {
            let hostile = format!("zz_hostile_name_{attempt}_never_interned");
            let before = ctr::symbol::Symbol::interned_count();
            let err = rt.fire(id, &hostile).unwrap_err();
            let batch = rt.fire_batch(id, &[hostile.as_str()]).unwrap();
            let after = ctr::symbol::Symbol::interned_count();
            assert!(matches!(err, RuntimeError::NotEligible { .. }));
            assert!(matches!(
                batch[0],
                FireOutcome::Rejected(RuntimeError::NotEligible { .. })
            ));
            assert_eq!(
                ctr::symbol::Symbol::try_get(&hostile),
                None,
                "rejected name must not be interned"
            );
            if before == after {
                break;
            }
            assert!(attempt < 5, "interner table would not settle");
        }
        // The instance is untouched and still fires known events.
        rt.fire(id, "invoice").unwrap();
    }

    #[test]
    fn mem_store_path_is_bit_identical_to_storeless() {
        // Attaching MemStore must not change a single observable byte:
        // same ids, same outcomes, same snapshot.
        let mut stored = Runtime::with_store(Arc::new(MemStore::new()));
        let mut plain = Runtime::new();
        for rt in [&mut stored, &mut plain] {
            rt.deploy_source(PAY).unwrap();
        }
        for _ in 0..3 {
            assert_eq!(stored.start("pay").unwrap(), plain.start("pay").unwrap());
        }
        let events = ["invoice", "approve", "file"];
        assert_eq!(
            stored.fire_batch(0, &events).unwrap(),
            plain.fire_batch(0, &events).unwrap()
        );
        assert_eq!(
            stored.fire(1, "invoice").unwrap(),
            plain.fire(1, "invoice").unwrap()
        );
        assert_eq!(stored.snapshot(), plain.snapshot());
        let stats = stored.store_stats().unwrap();
        assert_eq!(
            stats.appends,
            1 + 3 + 2,
            "deploy + starts + two event groups"
        );
        assert_eq!(stats.events, 4);
        assert_eq!(stats.max_group, 3);
        assert_eq!(plain.store_stats(), None);
    }

    #[test]
    fn open_recovers_the_full_fleet_from_records() {
        let store = Arc::new(MemStore::new());
        let snap_before;
        {
            let mut rt = Runtime::with_store(Arc::clone(&store) as Arc<dyn ctr_store::Store>);
            rt.deploy_source(PAY).unwrap();
            let i1 = rt.start("pay").unwrap();
            let i2 = rt.start("pay").unwrap();
            rt.fire_batch(i1, &["invoice", "approve", "file"]).unwrap();
            rt.fire(i2, "invoice").unwrap();
            snap_before = rt.snapshot();
        }
        // "Crash": drop the runtime, recover purely from the store.
        let rt = Runtime::open(store).unwrap();
        assert_eq!(rt.snapshot(), snap_before);
        assert!(rt.is_complete(0).unwrap());
        assert_eq!(rt.replayed_steps(), 4, "recovery replays every fire");
        // Recovered runtimes keep persisting: new ids continue the line.
        let mut rt = rt;
        assert_eq!(rt.start("pay").unwrap(), 2);
    }

    #[test]
    fn open_recovers_silent_completion_via_complete_record() {
        let goal = ctr::goal::seq(vec![
            Goal::atom("a"),
            ctr::goal::or(vec![Goal::Send(ctr::goal::Channel(0)), Goal::atom("b")]),
        ]);
        let store = Arc::new(MemStore::new());
        {
            let mut rt = Runtime::with_store(Arc::clone(&store) as Arc<dyn ctr_store::Store>);
            rt.deploy_compiled("opt", goal).unwrap();
            let id = rt.start("opt").unwrap();
            rt.fire(id, "a").unwrap();
            assert_eq!(rt.try_complete(id).unwrap(), InstanceStatus::Completed);
        }
        let rt = Runtime::open(store).unwrap();
        assert!(rt.is_complete(0).unwrap(), "silent completion survives");
    }

    #[test]
    fn checkpoint_compacts_and_reopens_identically() {
        let store = Arc::new(MemStore::new());
        let mut rt = Runtime::with_store(Arc::clone(&store) as Arc<dyn ctr_store::Store>);
        rt.deploy_source(PAY).unwrap();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        rt.checkpoint().unwrap();
        // Post-checkpoint traffic lands as fresh records.
        rt.fire(id, "approve").unwrap();
        let snap = rt.snapshot();
        drop(rt);
        let replay = store.replay().unwrap();
        assert!(replay.snapshot.is_some(), "checkpoint installed a baseline");
        assert_eq!(replay.records.len(), 1, "only the post-checkpoint fire");
        let rt = Runtime::open(store).unwrap();
        assert_eq!(rt.snapshot(), snap);
    }

    #[test]
    fn storeless_checkpoint_is_a_typed_error() {
        let mut rt = runtime_with_pay();
        assert!(matches!(rt.checkpoint(), Err(RuntimeError::Store(_))));
    }

    #[test]
    fn diverged_journal_rebuild_is_a_typed_error_not_a_debug_assert() {
        // Re-deploy an incompatible body, then ask the instance to
        // rebuild from its (now unreplayable) journal: this used to be
        // a debug_assert! — a panic in debug builds, silent cursor
        // corruption in release. It must be a typed Journal error.
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        rt.fire(id, "approve").unwrap();
        rt.deploy_source("workflow pay { graph other * things; }")
            .unwrap();
        let err = rt.invalidate(id).unwrap_err();
        assert!(matches!(err, RuntimeError::Journal(_)), "got {err:?}");
        // The failed rebuild left the old cursor untouched and usable.
        assert_eq!(rt.eligible(id).unwrap(), vec!["file".to_owned()]);
        rt.fire(id, "file").unwrap();
        assert!(rt.is_complete(id).unwrap());
    }

    #[test]
    fn snapshot_into_reuses_the_buffer() {
        let mut rt = runtime_with_pay();
        let id = rt.start("pay").unwrap();
        rt.fire(id, "invoice").unwrap();
        let expected = rt.snapshot();
        let mut buf = String::from("stale content from a previous use");
        rt.snapshot_into(&mut buf);
        assert_eq!(buf, expected);
        let cap = buf.capacity();
        rt.snapshot_into(&mut buf);
        assert_eq!(buf, expected);
        assert_eq!(buf.capacity(), cap, "steady state allocates nothing");
    }

    #[test]
    fn runtime_enact_runs_a_deployment_and_reports() {
        let rt = runtime_with_pay();
        let order = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut enactor = Enactor::new();
        for e in ["invoice", "approve", "reject", "file"] {
            let log = std::sync::Arc::clone(&order);
            enactor.register(
                e,
                Box::new(move |atom| {
                    log.lock().unwrap().push(atom.to_string());
                    Ok(())
                }),
            );
        }
        let report = rt.enact("pay", &enactor).unwrap();
        assert!(report.is_success());
        assert_eq!(report.completed.len(), 3, "invoice, one branch, file");
        let completed: Vec<String> = report.completed.iter().map(|s| s.to_string()).collect();
        assert_eq!(*order.lock().unwrap(), completed);
        assert!(matches!(
            rt.enact("ghost", &enactor).unwrap_err(),
            RuntimeError::UnknownWorkflow(name) if name == "ghost"
        ));
    }
}
