//! Workflow enactment: actually *running* the activities, fault-tolerantly.
//!
//! "An activity in a workflow might be performed by a human, a device, or
//! a program" (paper, §1) — that is, by things that fail, stall, and
//! crash. The scheduler decides *what may start*; the [`Enactor`] is the
//! dispatch loop that starts it — invoking a registered handler per
//! activity on a worker thread, firing the completion back into the
//! compiled schedule, and launching whatever becomes eligible next.
//! Independent activities (concurrent conjuncts) genuinely run in
//! parallel; `∨`-choices are resolved by a pluggable policy before
//! dispatch, because starting two mutually-exclusive activities would
//! waste (or worse, externally commit) real work.
//!
//! ## Fault model
//!
//! Every attempt at an activity ends in exactly one of five ways, all of
//! which the dispatcher observes in **bounded time** — no outcome can
//! wedge the loop:
//!
//! * **Success** — the handler returned `Ok`; the node is fired.
//! * **Failure** — the handler returned `Err`.
//! * **Panic** — the handler panicked. The worker wraps the invocation in
//!   [`std::panic::catch_unwind`], so the panic becomes an ordinary
//!   completion message instead of a silently dead thread. (This fixes a
//!   real bug: the dispatch loop used to hold its own sender, so the
//!   completion channel could never disconnect and a panicking handler
//!   hung `run` forever — the old `WorkerLost` branch was dead code.)
//! * **Loss** — the worker vanished without reporting. Each worker owns a
//!   send-on-drop *sentinel* (`SendGuard`): if the completion message
//!   is not sent by the time the worker's stack unwinds for *any* reason,
//!   the guard's `Drop` reports the loss. Exhausting retries on losses
//!   yields [`EnactError::WorkerLost`] — now an actually reachable,
//!   tested path.
//! * **Timeout** — the attempt's [`RetryPolicy::timeout`] elapsed. The
//!   dispatcher stops waiting (workers are detached threads, so an
//!   unresponsive handler cannot block the run's return) and a late
//!   completion from the abandoned worker is recognized by its stale
//!   ticket and ignored.
//!
//! Failures, panics, losses, and timeouts consult the activity's
//! [`RetryPolicy`] — attempt budget, fixed/exponential backoff with
//! deterministic jitter — before they abort the run. An aborted run
//! returns a typed [`EnactError`] inside an [`EnactReport`] that also
//! carries every attempt's outcome and latency, the committed trace, and
//! the compensating activity sequence for the committed prefix (computed
//! through `ctr_workflow::compensation`, Sagas-style).
//!
//! Deterministic fault injection for tests and benchmarks lives in
//! [`FaultPlan`]: fail-N-times-then-succeed, panic-on-attempt-K, delay
//! injection, and sentinel-loss injection, all keyed by activity.
//!
//! Because workers are detached, a run that aborts (or times an attempt
//! out) may leave handler invocations still executing in the background;
//! their completions go nowhere. This is inherent to timing out real
//! work — the compensation plan in the report is the tool for undoing
//! what such stragglers may have externally committed.

use ctr::goal::Goal;
use ctr::symbol::Symbol;
use ctr::term::Atom;
use ctr::timer::{parse_tick, render_delay, TimerKind};
use ctr_engine::scheduler::{Choice, Program, Scheduler};
use ctr_workflow::compensation::{compensation_plan, SagaStep};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// An activity implementation. Receives the atom being executed; `Err`
/// counts as a failed attempt (retried under the activity's
/// [`RetryPolicy`], then aborting the enactment). Panics are caught and
/// treated the same way.
pub type Handler = Box<dyn Fn(&Atom) -> Result<(), String> + Send + Sync>;

/// How the enactor resolves a branching decision when nothing
/// commitment-free is eligible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChoicePolicy {
    /// Deterministically take the first eligible step.
    #[default]
    First,
    /// Pseudo-randomly pick among eligible steps (seeded).
    Random(u64),
}

/// Backoff schedule between retry attempts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backoff {
    /// Retry immediately.
    #[default]
    None,
    /// The same delay before every retry.
    Fixed(Duration),
    /// `base · factorⁿ` before the n-th retry, capped at `max`.
    Exponential {
        /// Delay before the first retry.
        base: Duration,
        /// Multiplier per subsequent retry.
        factor: u32,
        /// Upper bound on the delay.
        max: Duration,
    },
}

/// Per-activity robustness policy: how many attempts an activity gets,
/// how long to wait between them, and how long a single attempt may run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (including the first); at least 1.
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
    /// Adds a deterministic pseudo-random extra delay of up to half the
    /// backoff, derived from the enactor seed, the activity, and the
    /// attempt number — same seed, same schedule.
    pub jitter: bool,
    /// Per-attempt wall-clock budget; `None` waits indefinitely.
    pub timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::None,
            jitter: false,
            timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts (min 1), no
    /// backoff, no timeout.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Sets the backoff schedule.
    pub fn with_backoff(mut self, backoff: Backoff) -> RetryPolicy {
        self.backoff = backoff;
        self
    }

    /// Enables deterministic jitter on top of the backoff.
    pub fn with_jitter(mut self) -> RetryPolicy {
        self.jitter = true;
        self
    }

    /// Sets the per-attempt timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> RetryPolicy {
        self.timeout = Some(timeout);
        self
    }

    /// Delay before `next_attempt` (2-based: the first retry is attempt
    /// 2). `salt` folds the enactor seed and the activity identity into
    /// the jitter so schedules are deterministic per seed.
    fn delay_before(&self, next_attempt: u32, salt: u64) -> Duration {
        let base = match self.backoff {
            Backoff::None => Duration::ZERO,
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, factor, max } => {
                let exp = next_attempt.saturating_sub(2).min(20);
                let mut d = base;
                for _ in 0..exp {
                    d = d.saturating_mul(factor);
                    if d >= max {
                        break;
                    }
                }
                d.min(max)
            }
        };
        if !self.jitter || base.is_zero() {
            return base;
        }
        let span = (base.as_nanos() / 2).max(1) as u64;
        base + Duration::from_nanos(splitmix(salt ^ u64::from(next_attempt)) % span)
    }
}

/// One injected fault, applied to every attempt it matches *before* the
/// real handler runs. Attempt numbers are 1-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Attempts `1..=n` return an injected `Err`; later attempts pass
    /// through to the handler (fail-N-times-then-succeed).
    FailTimes(u32),
    /// Attempt `k` panics inside the worker (exercises the
    /// `catch_unwind` path); other attempts pass through.
    PanicOnAttempt(u32),
    /// Every attempt sleeps this long before the handler runs (exercises
    /// timeouts and overlap).
    Delay(Duration),
    /// Attempts `1..=n` end without reporting at all — the worker
    /// returns early and only the send-on-drop sentinel speaks
    /// (exercises the [`EnactError::WorkerLost`] path).
    Vanish(u32),
}

/// A deterministic, seeded fault-injection plan: per-activity faults
/// consulted by the dispatcher on every attempt. The seed also feeds the
/// retry jitter, so a `(plan, seed, policy)` triple replays exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: BTreeMap<Symbol, Vec<Fault>>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if no faults are registered.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a fault for `event`.
    pub fn inject(mut self, event: impl Into<Symbol>, fault: Fault) -> FaultPlan {
        self.faults.entry(event.into()).or_default().push(fault);
        self
    }

    /// Shorthand: `event` fails on its first `times` attempts.
    pub fn fail(self, event: impl Into<Symbol>, times: u32) -> FaultPlan {
        self.inject(event, Fault::FailTimes(times))
    }

    /// Shorthand: `event` panics on attempt `attempt`.
    pub fn panic_on(self, event: impl Into<Symbol>, attempt: u32) -> FaultPlan {
        self.inject(event, Fault::PanicOnAttempt(attempt))
    }

    /// Shorthand: every attempt of `event` is delayed by `delay`.
    pub fn delay(self, event: impl Into<Symbol>, delay: Duration) -> FaultPlan {
        self.inject(event, Fault::Delay(delay))
    }

    fn for_event(&self, event: Symbol) -> &[Fault] {
        self.faults.get(&event).map_or(&[], Vec::as_slice)
    }
}

/// How one attempt at an activity ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The handler returned `Ok`; the activity fired.
    Success,
    /// The handler returned `Err` with this reason.
    Failed(String),
    /// The handler panicked with this message (caught by the worker).
    Panicked(String),
    /// The attempt exceeded its [`RetryPolicy::timeout`].
    TimedOut,
    /// The worker ended without reporting; detected by the send-on-drop
    /// sentinel.
    Lost,
}

/// One attempt at one activity, as recorded in the [`EnactReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttemptRecord {
    /// The activity.
    pub event: Symbol,
    /// 1-based attempt number.
    pub attempt: u32,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// Wall-clock time from dispatch to outcome (for timeouts: the
    /// budget that elapsed).
    pub latency: Duration,
}

/// The full record of an enactment run, produced on success *and*
/// failure by [`Enactor::run_report`].
#[derive(Clone, Debug)]
pub struct EnactReport {
    /// The committed trace (every fired atom, silent steps included).
    pub trace: Vec<Atom>,
    /// The committed observable events, in commit order.
    pub completed: Vec<Symbol>,
    /// Every attempt, in completion order, with outcome and latency.
    pub attempts: Vec<AttemptRecord>,
    /// On failure: the compensating activity sequence for the committed
    /// prefix (Sagas-style, via `ctr_workflow::compensation`); empty on
    /// success or when no compensators are registered.
    pub compensation: Vec<Symbol>,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// `None` on success; the typed abort reason otherwise.
    pub error: Option<EnactError>,
}

impl EnactReport {
    /// True if the workflow ran to completion.
    pub fn is_success(&self) -> bool {
        self.error.is_none()
    }

    /// Number of attempts recorded for `event`.
    pub fn attempts_for(&self, event: Symbol) -> u32 {
        self.attempts.iter().filter(|a| a.event == event).count() as u32
    }

    /// Attempts beyond each activity's first — the total retry work.
    pub fn total_retries(&self) -> u32 {
        self.attempts.iter().filter(|a| a.attempt > 1).count() as u32
    }
}

/// Errors from an enactment run. Every variant carries the committed
/// observable prefix, which is always a valid schedule prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnactError {
    /// A handler exhausted its retry budget with `Err`; the run stops.
    HandlerFailed {
        /// The failing activity.
        event: String,
        /// The final attempt's error.
        reason: String,
        /// Events committed before the failure.
        completed: Vec<Symbol>,
    },
    /// A handler exhausted its retry budget by panicking.
    HandlerPanicked {
        /// The panicking activity.
        event: String,
        /// The final panic message.
        message: String,
        /// Events committed before the failure.
        completed: Vec<Symbol>,
    },
    /// An attempt exceeded its timeout budget on every allowed attempt.
    TimedOut {
        /// The unresponsive activity.
        event: String,
        /// Events committed before the failure.
        completed: Vec<Symbol>,
    },
    /// A `deadline(event, d)` timer came due before its guarded event
    /// committed. The run aborts and the report carries the
    /// compensation plan for the committed prefix.
    DeadlineExpired {
        /// The event the deadline guarded.
        event: String,
        /// The deadline delay, in milliseconds from run start.
        delay_ms: u64,
        /// Events committed before the expiry.
        completed: Vec<Symbol>,
    },
    /// The schedule deadlocked (cannot happen for excised programs with
    /// the knot-free guarantee).
    Deadlock,
    /// A worker thread ended without reporting a result on every allowed
    /// attempt (detected by the send-on-drop sentinel), or the
    /// completion channel disconnected with work outstanding.
    WorkerLost {
        /// Events committed before the worker vanished.
        completed: Vec<Symbol>,
    },
}

impl EnactError {
    /// The committed observable prefix at the point of failure (empty
    /// for [`EnactError::Deadlock`], which commits nothing new).
    pub fn completed(&self) -> &[Symbol] {
        match self {
            EnactError::HandlerFailed { completed, .. }
            | EnactError::HandlerPanicked { completed, .. }
            | EnactError::TimedOut { completed, .. }
            | EnactError::DeadlineExpired { completed, .. }
            | EnactError::WorkerLost { completed } => completed,
            EnactError::Deadlock => &[],
        }
    }

    fn with_completed(self, completed: Vec<Symbol>) -> EnactError {
        match self {
            EnactError::HandlerFailed { event, reason, .. } => EnactError::HandlerFailed {
                event,
                reason,
                completed,
            },
            EnactError::HandlerPanicked { event, message, .. } => EnactError::HandlerPanicked {
                event,
                message,
                completed,
            },
            EnactError::TimedOut { event, .. } => EnactError::TimedOut { event, completed },
            EnactError::DeadlineExpired {
                event, delay_ms, ..
            } => EnactError::DeadlineExpired {
                event,
                delay_ms,
                completed,
            },
            EnactError::WorkerLost { .. } => EnactError::WorkerLost { completed },
            EnactError::Deadlock => EnactError::Deadlock,
        }
    }
}

impl fmt::Display for EnactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnactError::HandlerFailed { event, reason, .. } => {
                write!(f, "activity `{event}` failed: {reason}")
            }
            EnactError::HandlerPanicked { event, message, .. } => {
                write!(f, "activity `{event}` panicked: {message}")
            }
            EnactError::TimedOut { event, .. } => {
                write!(f, "activity `{event}` timed out")
            }
            EnactError::DeadlineExpired {
                event, delay_ms, ..
            } => {
                write!(
                    f,
                    "deadline on `{event}` expired after {}",
                    render_delay(*delay_ms)
                )
            }
            EnactError::Deadlock => write!(f, "schedule deadlocked"),
            EnactError::WorkerLost { .. } => {
                write!(f, "a worker thread died without reporting")
            }
        }
    }
}

impl std::error::Error for EnactError {}

// ---------------------------------------------------------------------------
// Worker protocol
// ---------------------------------------------------------------------------

/// A worker's completion verdict.
enum Verdict {
    Ok,
    Fail(String),
    Panic(String),
    Lost,
}

struct Done {
    ticket: u64,
    verdict: Verdict,
}

/// The send-on-drop sentinel: every worker owns one, so *some* message
/// reaches the dispatcher per attempt even if the worker's body never
/// gets to report — the channel can starve the loop only if a thread is
/// destroyed without unwinding, which the per-attempt timeout covers.
struct SendGuard {
    tx: Option<mpsc::Sender<Done>>,
    ticket: u64,
}

impl SendGuard {
    fn complete(mut self, verdict: Verdict) {
        if let Some(tx) = self.tx.take() {
            // The loop may have aborted already; a closed channel is fine.
            let _ = tx.send(Done {
                ticket: self.ticket,
                verdict,
            });
        }
    }
}

impl Drop for SendGuard {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Done {
                ticket: self.ticket,
                verdict: Verdict::Lost,
            });
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_owned())
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

/// One in-flight attempt.
struct Pending {
    node: usize,
    event: Symbol,
    attempt: u32,
    started: Instant,
    deadline: Option<Instant>,
    policy: RetryPolicy,
}

/// One scheduled retry, waiting out its backoff.
struct QueuedRetry {
    due: Instant,
    node: usize,
    attempt: u32,
}

/// The per-run dispatch state, split out of the main loop so attempt
/// bookkeeping has a home.
struct Dispatch<'e> {
    enactor: &'e Enactor,
    tx: mpsc::Sender<Done>,
    pending: BTreeMap<u64, Pending>,
    busy: BTreeSet<usize>,
    retries: Vec<QueuedRetry>,
    log: Vec<AttemptRecord>,
    next_ticket: u64,
}

impl Dispatch<'_> {
    /// Spawns a detached worker for attempt `attempt` of `node`.
    fn spawn(&mut self, node: usize, atom: &Atom, attempt: u32) {
        let event = atom
            .as_event()
            .unwrap_or_else(|| Symbol::intern(&atom.to_string()));
        let policy = *self
            .enactor
            .retries
            .get(&event)
            .unwrap_or(&self.enactor.default_retry);
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let started = Instant::now();
        self.busy.insert(node);
        self.pending.insert(
            ticket,
            Pending {
                node,
                event,
                attempt,
                started,
                deadline: policy.timeout.map(|t| started + t),
                policy,
            },
        );
        let handler = atom
            .as_event()
            .and_then(|e| self.enactor.handlers.get(&e))
            .cloned();
        let faults: Vec<Fault> = self.enactor.faults.for_event(event).to_vec();
        let atom = atom.clone();
        let guard = SendGuard {
            tx: Some(self.tx.clone()),
            ticket,
        };
        std::thread::spawn(move || {
            if faults
                .iter()
                .any(|f| matches!(f, Fault::Vanish(n) if attempt <= *n))
            {
                // Simulated worker loss: return with the sentinel armed —
                // its Drop is the only report the dispatcher gets.
                return;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                for fault in &faults {
                    match fault {
                        Fault::FailTimes(n) if attempt <= *n => {
                            return Err(format!("injected failure ({attempt}/{n})"));
                        }
                        Fault::PanicOnAttempt(k) if attempt == *k => {
                            panic!("injected panic on attempt {k}");
                        }
                        Fault::Delay(d) => std::thread::sleep(*d),
                        _ => {}
                    }
                }
                match &handler {
                    Some(h) => h(&atom),
                    None => Ok(()),
                }
            }));
            guard.complete(match result {
                Ok(Ok(())) => Verdict::Ok,
                Ok(Err(reason)) => Verdict::Fail(reason),
                Err(payload) => Verdict::Panic(panic_message(&*payload)),
            });
        });
    }

    /// Records a failed attempt and either schedules a retry (returning
    /// `None`) or produces the fatal error (with `completed` left for
    /// the caller to fill in).
    fn after_failure(&mut self, p: Pending, outcome: AttemptOutcome) -> Option<EnactError> {
        let latency = match outcome {
            AttemptOutcome::TimedOut => p.policy.timeout.unwrap_or_default(),
            _ => p.started.elapsed(),
        };
        self.log.push(AttemptRecord {
            event: p.event,
            attempt: p.attempt,
            outcome: outcome.clone(),
            latency,
        });
        if p.attempt < p.policy.max_attempts {
            let salt =
                self.enactor.seed ^ self.enactor.faults.seed ^ (u64::from(p.event.index()) << 32);
            let due = Instant::now() + p.policy.delay_before(p.attempt + 1, salt);
            self.retries.push(QueuedRetry {
                due,
                node: p.node,
                attempt: p.attempt + 1,
            });
            return None;
        }
        let event = p.event.to_string();
        Some(match outcome {
            AttemptOutcome::Failed(reason) => EnactError::HandlerFailed {
                event,
                reason,
                completed: Vec::new(),
            },
            AttemptOutcome::Panicked(message) => EnactError::HandlerPanicked {
                event,
                message,
                completed: Vec::new(),
            },
            AttemptOutcome::TimedOut => EnactError::TimedOut {
                event,
                completed: Vec::new(),
            },
            AttemptOutcome::Lost | AttemptOutcome::Success => EnactError::WorkerLost {
                completed: Vec::new(),
            },
        })
    }

    /// The next instant the loop must act without a message: the
    /// earliest attempt deadline or retry due time.
    fn next_wake(&self) -> Option<Instant> {
        self.pending
            .values()
            .filter_map(|p| p.deadline)
            .chain(self.retries.iter().map(|r| r.due))
            .min()
    }
}

// ---------------------------------------------------------------------------
// Enactor
// ---------------------------------------------------------------------------

/// The fault-tolerant activity dispatch loop.
#[derive(Default)]
pub struct Enactor {
    handlers: BTreeMap<Symbol, Arc<Handler>>,
    policy: ChoicePolicy,
    default_retry: RetryPolicy,
    retries: BTreeMap<Symbol, RetryPolicy>,
    saga: Vec<SagaStep>,
    faults: FaultPlan,
    seed: u64,
}

impl Enactor {
    /// An enactor with no handlers; unregistered activities complete
    /// instantly (pure significant events).
    pub fn new() -> Enactor {
        Enactor::default()
    }

    /// Registers the implementation of an activity.
    pub fn register(&mut self, event: impl Into<Symbol>, handler: Handler) -> &mut Self {
        self.handlers.insert(event.into(), Arc::new(handler));
        self
    }

    /// Registers the compensator activity that semantically undoes
    /// `event` — sugar for a single-step saga. On an aborted run the
    /// report's compensation plan lists the compensators of the
    /// committed prefix in reverse commit order.
    pub fn compensate(&mut self, event: impl Into<Symbol>, undo: impl Into<Symbol>) -> &mut Self {
        self.saga.push(SagaStep::new(
            Goal::atom(event.into()),
            Goal::atom(undo.into()),
        ));
        self
    }

    /// Registers saga steps (see [`SagaStep`]); an aborted run's
    /// compensation plan is computed from fully-committed steps via
    /// [`compensation_plan`].
    pub fn with_saga(&mut self, steps: &[SagaStep]) -> &mut Self {
        self.saga.extend_from_slice(steps);
        self
    }

    /// Sets the branching policy.
    pub fn with_policy(mut self, policy: ChoicePolicy) -> Enactor {
        self.policy = policy;
        self
    }

    /// Sets the retry policy applied to activities without a specific
    /// one.
    pub fn with_default_retry(mut self, policy: RetryPolicy) -> Enactor {
        self.default_retry = policy;
        self
    }

    /// Sets the retry policy of one activity.
    pub fn with_retry(mut self, event: impl Into<Symbol>, policy: RetryPolicy) -> Enactor {
        self.retries.insert(event.into(), policy);
        self
    }

    /// Installs a fault-injection plan (testing/benchmarking).
    pub fn with_faults(mut self, faults: FaultPlan) -> Enactor {
        self.faults = faults;
        self
    }

    /// Sets the seed feeding deterministic retry jitter.
    pub fn with_seed(mut self, seed: u64) -> Enactor {
        self.seed = seed;
        self
    }

    /// The compensating activity sequence for a committed prefix, from
    /// the registered saga steps / compensators.
    pub fn compensation_for(&self, committed: &[Symbol]) -> Vec<Symbol> {
        compensation_plan(&self.saga, committed)
    }

    /// Runs the program to completion, dispatching commitment-free
    /// eligible activities concurrently. Returns the executed path, or
    /// the typed abort reason. See [`Enactor::run_report`] for the full
    /// per-attempt record.
    pub fn run(&self, program: &Program) -> Result<Vec<Atom>, EnactError> {
        let report = self.run_report(program);
        match report.error {
            None => Ok(report.trace),
            Some(err) => Err(err),
        }
    }

    /// Runs the program to completion and returns the full
    /// [`EnactReport`] — committed trace, every attempt's outcome and
    /// latency, and (on failure) the typed error plus compensation plan.
    ///
    /// Termination is bounded: every attempt either reports (worker
    /// message or sentinel) or times out under its policy; a handler
    /// that blocks forever *without* a configured timeout blocks the run
    /// by design (the caller asked to wait).
    pub fn run_report(&self, program: &Program) -> EnactReport {
        let run_started = Instant::now();
        let mut scheduler = Scheduler::new(program);

        // Timer ticks are wall-clock alarms, not activities: an event
        // node named by the tick scheme is never dispatched to a worker.
        // An `after` tick fires when its delay (from run start) elapses,
        // opening the delay gate it feeds; a `deadline` tick that comes
        // due before its base event committed aborts the run.
        struct ArmedTick {
            base: Symbol,
            deadline: bool,
            due: Instant,
        }
        let mut tick_nodes: BTreeSet<usize> = BTreeSet::new();
        let mut ticks: BTreeMap<usize, ArmedTick> = BTreeMap::new();
        for node in 0..program.len() {
            let Some(sym) = program.event(node).and_then(Atom::as_event) else {
                continue;
            };
            let Some(tick) = parse_tick(sym.as_str()) else {
                continue;
            };
            tick_nodes.insert(node);
            ticks.insert(
                node,
                ArmedTick {
                    base: Symbol::intern(tick.base),
                    deadline: tick.kind == TimerKind::Deadline,
                    due: run_started + Duration::from_millis(tick.delay_ms),
                },
            );
        }
        let mut rng_state = match self.policy {
            ChoicePolicy::Random(seed) => seed,
            ChoicePolicy::First => 0,
        };
        let (tx, rx) = mpsc::channel::<Done>();
        let mut d = Dispatch {
            enactor: self,
            tx,
            pending: BTreeMap::new(),
            busy: BTreeSet::new(),
            retries: Vec::new(),
            log: Vec::new(),
            next_ticket: 0,
        };

        let error: Option<EnactError> = 'run: loop {
            // Launch retries whose backoff has elapsed.
            let now = Instant::now();
            let mut i = 0;
            while i < d.retries.len() {
                if d.retries[i].due <= now {
                    let retry = d.retries.swap_remove(i);
                    let atom = program
                        .event(retry.node)
                        .expect("retried node carries an event")
                        .clone();
                    d.spawn(retry.node, &atom, retry.attempt);
                } else {
                    i += 1;
                }
            }

            // Fire timer ticks whose due time has arrived and whose node
            // is eligible. Completions queued before the due instant were
            // drained at the bottom of the previous iteration, so a base
            // event that beat its deadline is already in the trace.
            let now = Instant::now();
            let due: Vec<usize> = ticks
                .iter()
                .filter(|(node, t)| {
                    t.due <= now && scheduler.eligible().iter().any(|c| c.node == **node)
                })
                .map(|(&node, _)| node)
                .collect();
            for node in due {
                let tick = ticks.remove(&node).expect("just listed");
                if !tick.deadline {
                    // An elapsed delay gate: fire the tick so its paired
                    // send opens the gated branch.
                    scheduler.fire(node);
                    continue;
                }
                if scheduler.trace_names().contains(&tick.base) {
                    // The guarded event committed in time; the tick node
                    // is evicted when the dismissal branch resolves.
                    continue;
                }
                let delay_ms = tick.due.saturating_duration_since(run_started).as_millis() as u64;
                break 'run Some(EnactError::DeadlineExpired {
                    event: tick.base.to_string(),
                    delay_ms,
                    completed: Vec::new(),
                });
            }

            // Dispatch every eligible, commitment-free, observable step
            // that is not already being attempted. Tick nodes are fired
            // by the clock above, never handed to workers.
            for choice in scheduler.eligible() {
                if !choice.observable
                    || tick_nodes.contains(&choice.node)
                    || d.busy.contains(&choice.node)
                    || !scheduler.is_commitment_free(choice.node)
                {
                    continue;
                }
                let Some(atom) = program.event(choice.node) else {
                    continue;
                };
                let atom = atom.clone();
                d.spawn(choice.node, &atom, 1);
            }

            if d.pending.is_empty() && d.retries.is_empty() {
                if scheduler.is_complete() {
                    break 'run None;
                }
                // Nothing runnable without committing: resolve a choice
                // via the policy (silent steps included — a silent
                // branch may be the only way to finish). Tick nodes are
                // not picked — the clock fires them.
                let eligible: Vec<Choice> = scheduler
                    .eligible()
                    .iter()
                    .filter(|c| !tick_nodes.contains(&c.node))
                    .copied()
                    .collect();
                if eligible.is_empty() {
                    // Only ticks (or nothing) are left: if an armed one
                    // can still fire, wait for its due time instead of
                    // declaring a deadlock.
                    let waiting = scheduler
                        .eligible()
                        .iter()
                        .any(|c| ticks.contains_key(&c.node));
                    if !waiting {
                        break 'run Some(EnactError::Deadlock);
                    }
                } else {
                    let idx = match self.policy {
                        ChoicePolicy::First => 0,
                        ChoicePolicy::Random(_) => {
                            rng_state = rng_state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            (rng_state >> 33) as usize % eligible.len()
                        }
                    };
                    let pick = eligible[idx];
                    let observable_event = program.event(pick.node).filter(|_| pick.observable);
                    match observable_event.cloned() {
                        // The branch is committed when its first activity
                        // *succeeds* (work-then-claim): the attempt runs
                        // through the normal retry machinery and the node is
                        // fired on success. Nothing else dispatches until
                        // then — the schedule cannot move under the attempt.
                        Some(atom) => d.spawn(pick.node, &atom, 1),
                        None => scheduler.fire(pick.node),
                    }
                    continue;
                }
            }

            // Wait for the next completion, deadline, retry due time, or
            // eligible armed tick.
            let tick_wake = ticks
                .iter()
                .filter(|(node, _)| scheduler.eligible().iter().any(|c| c.node == **node))
                .map(|(_, t)| t.due)
                .min();
            let first = match d.next_wake().into_iter().chain(tick_wake).min() {
                // The sentinel protocol guarantees one message per
                // in-flight attempt, so this blocks only as long as an
                // (untimed) handler runs.
                None => match rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => {
                        break 'run Some(EnactError::WorkerLost {
                            completed: Vec::new(),
                        })
                    }
                },
                Some(at) => {
                    let now = Instant::now();
                    if at <= now {
                        None
                    } else {
                        match rx.recv_timeout(at - now) {
                            Ok(msg) => Some(msg),
                            Err(mpsc::RecvTimeoutError::Timeout) => None,
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                break 'run Some(EnactError::WorkerLost {
                                    completed: Vec::new(),
                                })
                            }
                        }
                    }
                }
            };

            // Opportunistically drain every completion already queued: a
            // burst of finished workers is fired as one batch. Safe
            // because every dispatched step was commitment-free at
            // dispatch time, so firing one cannot cancel another.
            let mut batch: Vec<Done> = first.into_iter().collect();
            batch.extend(std::iter::from_fn(|| rx.try_recv().ok()));
            for done in batch {
                let Some(p) = d.pending.remove(&done.ticket) else {
                    // Stale ticket: a previously timed-out attempt's
                    // worker finally reported. Its claim was withdrawn;
                    // ignore it.
                    continue;
                };
                match done.verdict {
                    Verdict::Ok => {
                        d.log.push(AttemptRecord {
                            event: p.event,
                            attempt: p.attempt,
                            outcome: AttemptOutcome::Success,
                            latency: p.started.elapsed(),
                        });
                        d.busy.remove(&p.node);
                        scheduler.fire(p.node);
                    }
                    Verdict::Fail(reason) => {
                        if let Some(err) = d.after_failure(p, AttemptOutcome::Failed(reason)) {
                            break 'run Some(err);
                        }
                    }
                    Verdict::Panic(message) => {
                        if let Some(err) = d.after_failure(p, AttemptOutcome::Panicked(message)) {
                            break 'run Some(err);
                        }
                    }
                    Verdict::Lost => {
                        if let Some(err) = d.after_failure(p, AttemptOutcome::Lost) {
                            break 'run Some(err);
                        }
                    }
                }
            }

            // Withdraw attempts whose deadline passed: the worker keeps
            // running detached, but its claim on the node is released to
            // the retry machinery and its eventual message is stale.
            let now = Instant::now();
            let expired: Vec<u64> = d
                .pending
                .iter()
                .filter(|(_, p)| p.deadline.is_some_and(|at| at <= now))
                .map(|(&ticket, _)| ticket)
                .collect();
            for ticket in expired {
                let p = d.pending.remove(&ticket).expect("just listed");
                if let Some(err) = d.after_failure(p, AttemptOutcome::TimedOut) {
                    break 'run Some(err);
                }
            }
        };

        let completed = scheduler.trace_names();
        let error = error.map(|e| match e {
            EnactError::Deadlock => EnactError::Deadlock,
            e => e.with_completed(completed.clone()),
        });
        let compensation = if error.is_some() {
            self.compensation_for(&completed)
        } else {
            Vec::new()
        };
        EnactReport {
            trace: scheduler.trace().to_vec(),
            completed,
            attempts: d.log,
            compensation,
            elapsed: run_started.elapsed(),
            error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::constraints::Constraint;
    use ctr::goal::{conc, or, seq, Goal};
    use ctr::sym;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier, Mutex};

    /// Generous bound on "the run must terminate": far above any test's
    /// real runtime, far below a wedged `cargo test`.
    const WATCHDOG: Duration = Duration::from_secs(60);

    fn program(goal: &Goal, constraints: &[Constraint]) -> Program {
        let compiled = ctr::analysis::compile(goal, constraints).unwrap();
        Program::compile(&compiled.goal).unwrap()
    }

    /// Runs the enactor on a watchdog thread: panics (fast) if `run`
    /// fails to terminate instead of wedging the whole test binary.
    fn run_guarded(enactor: Enactor, p: Program) -> Result<Vec<Atom>, EnactError> {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(enactor.run(&p));
        });
        rx.recv_timeout(WATCHDOG)
            .expect("Enactor::run must terminate in bounded time (watchdog)")
    }

    /// A handler that records its event in a shared log.
    fn recording(log: &Arc<Mutex<Vec<String>>>) -> Handler {
        let log = Arc::clone(log);
        Box::new(move |atom| {
            log.lock().unwrap().push(atom.to_string());
            Ok(())
        })
    }

    #[test]
    fn sequential_workflow_runs_in_order() {
        let p = program(
            &seq(vec![Goal::atom("a"), Goal::atom("b"), Goal::atom("c")]),
            &[],
        );
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut enactor = Enactor::new();
        for e in ["a", "b", "c"] {
            enactor.register(e, recording(&log));
        }
        let trace = enactor.run(&p).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(*log.lock().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn concurrent_activities_really_overlap() {
        // Two concurrent activities rendezvous at a barrier: the run can
        // only finish if both handlers execute simultaneously.
        let p = program(&conc(vec![Goal::atom("left"), Goal::atom("right")]), &[]);
        let barrier = Arc::new(Barrier::new(2));
        let mut enactor = Enactor::new();
        for e in ["left", "right"] {
            let b = Arc::clone(&barrier);
            enactor.register(
                e,
                Box::new(move |_| {
                    b.wait();
                    Ok(())
                }),
            );
        }
        let trace = enactor.run(&p).unwrap();
        assert_eq!(trace.len(), 2, "both sides passed the barrier concurrently");
    }

    #[test]
    fn compiled_order_constraints_serialize_dispatch() {
        // a | b with a<b compiled in: b's handler must observe a's completion.
        let p = program(
            &conc(vec![Goal::atom("a"), Goal::atom("b")]),
            &[Constraint::order("a", "b")],
        );
        let counter = Arc::new(AtomicUsize::new(0));
        let mut enactor = Enactor::new();
        {
            let c = Arc::clone(&counter);
            enactor.register(
                "a",
                Box::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
            );
        }
        {
            let c = Arc::clone(&counter);
            enactor.register(
                "b",
                Box::new(move |_| {
                    if c.load(Ordering::SeqCst) == 1 {
                        Ok(())
                    } else {
                        Err("started before a completed".to_owned())
                    }
                }),
            );
        }
        enactor.run(&p).expect("order constraint gates dispatch");
    }

    /// Compiles `goal` with one timer rule through the real
    /// `ctr_workflow::compile_timer` pipeline.
    fn timed_program(goal: &Goal, timer: &ctr_workflow::TimerSpec) -> Program {
        let mut channels = ctr::apply::ChannelAlloc::fresh_for(goal);
        let timed = ctr_workflow::compile_timer(goal, timer, &mut channels);
        Program::compile(&timed).unwrap()
    }

    #[test]
    fn after_gates_hold_the_activity_until_the_delay_elapses() {
        // after(b, 120ms): the tick is fired by the clock — never handed
        // to a worker — and `b` cannot start before the delay elapses.
        let p = timed_program(
            &seq(vec![Goal::atom("a"), Goal::atom("b")]),
            &ctr_workflow::TimerSpec::after("b", 120),
        );
        let started = Instant::now();
        let trace = run_guarded(Enactor::new(), p).unwrap();
        assert!(
            started.elapsed() >= Duration::from_millis(120),
            "the gate held until the delay elapsed"
        );
        let names: Vec<String> = trace.iter().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["a", "b@after120", "b"]);
    }

    #[test]
    fn expired_deadline_aborts_with_the_compensation_plan() {
        // deadline(approve, 60ms) with an approve handler that stalls
        // past the deadline: the run aborts, the committed prefix is the
        // booked work, and the report carries its compensation plan.
        let p = timed_program(
            &seq(vec![Goal::atom("book"), Goal::atom("approve")]),
            &ctr_workflow::TimerSpec::deadline("approve", 60),
        );
        let mut enactor = Enactor::new();
        enactor.register(
            "approve",
            Box::new(|_| {
                std::thread::sleep(Duration::from_millis(400));
                Ok(())
            }),
        );
        enactor.compensate("book", "cancel_booking");
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(enactor.run_report(&p));
        });
        let report = rx.recv_timeout(WATCHDOG).expect("run terminates");
        match report.error {
            Some(EnactError::DeadlineExpired {
                ref event,
                delay_ms,
                ref completed,
            }) => {
                assert_eq!(event, "approve");
                assert_eq!(delay_ms, 60);
                assert_eq!(completed, &[sym("book")]);
            }
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        assert_eq!(report.compensation, vec![sym("cancel_booking")]);
    }

    #[test]
    fn deadline_met_in_time_is_dismissed_silently() {
        // The guarded event commits well before the deadline: no tick in
        // the trace, no error, and the run does not wait out the timer.
        let p = timed_program(
            &seq(vec![Goal::atom("book"), Goal::atom("approve")]),
            &ctr_workflow::TimerSpec::deadline("approve", 30_000),
        );
        let started = Instant::now();
        let trace = run_guarded(Enactor::new(), p).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "dismissal must not wait out the deadline"
        );
        let names: Vec<String> = trace.iter().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["book", "approve"]);
    }

    #[test]
    fn choices_are_resolved_before_dispatch() {
        // Only one branch's handler may ever run.
        let p = program(&or(vec![Goal::atom("x"), Goal::atom("y")]), &[]);
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut enactor = Enactor::new();
        enactor.register("x", recording(&log));
        enactor.register("y", recording(&log));
        enactor.run(&p).unwrap();
        assert_eq!(log.lock().unwrap().len(), 1, "exactly one branch executed");
    }

    #[test]
    fn random_policy_explores_branches() {
        let goal = or(vec![Goal::atom("x"), Goal::atom("y")]);
        let p = program(&goal, &[]);
        let mut seen = BTreeSet::new();
        for seed in 0..16 {
            let enactor = Enactor::new().with_policy(ChoicePolicy::Random(seed));
            let trace = enactor.run(&p).unwrap();
            seen.insert(trace[0].as_event().unwrap());
        }
        assert_eq!(seen.len(), 2, "both branches reachable under random policy");
    }

    #[test]
    fn handler_failure_aborts_with_context() {
        let p = program(
            &seq(vec![
                Goal::atom("ok"),
                Goal::atom("boom"),
                Goal::atom("never"),
            ]),
            &[],
        );
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut enactor = Enactor::new();
        enactor.register("ok", recording(&log));
        enactor.register("boom", Box::new(|_| Err("disk on fire".to_owned())));
        enactor.register("never", recording(&log));
        let err = enactor.run(&p).unwrap_err();
        let EnactError::HandlerFailed {
            event,
            reason,
            completed,
        } = err
        else {
            panic!("expected handler failure");
        };
        assert_eq!(event, "boom");
        assert_eq!(reason, "disk on fire");
        assert_eq!(completed, vec![sym("ok")]);
        assert_eq!(*log.lock().unwrap(), vec!["ok"], "`never` never ran");
    }

    #[test]
    fn unregistered_activities_complete_instantly() {
        let p = program(&seq(vec![Goal::atom("ghost1"), Goal::atom("ghost2")]), &[]);
        let trace = Enactor::new().run(&p).unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn wide_fanout_completes() {
        let goal = conc((0..12).map(|i| Goal::atom(format!("w{i}"))).collect());
        let p = program(&goal, &[]);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut enactor = Enactor::new();
        for i in 0..12 {
            let c = Arc::clone(&counter);
            enactor.register(
                format!("w{i}").as_str(),
                Box::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
            );
        }
        let trace = enactor.run(&p).unwrap();
        assert_eq!(trace.len(), 12);
        assert_eq!(counter.load(Ordering::SeqCst), 12);
    }

    // --- Fault tolerance ---------------------------------------------------

    #[test]
    fn panicking_handler_yields_typed_error_not_a_hang() {
        // THE regression this module exists to pin: a handler that
        // panics (instead of returning Err) used to deadlock run()
        // forever, because the loop's own done_tx kept the completion
        // channel open and the panicking worker never sent. The watchdog
        // makes a reintroduced hang fail in seconds, not wedge CI.
        let p = program(&seq(vec![Goal::atom("fine"), Goal::atom("kaboom")]), &[]);
        let mut enactor = Enactor::new();
        enactor.register("kaboom", Box::new(|_| panic!("handler exploded")));
        let err = run_guarded(enactor, p).unwrap_err();
        let EnactError::HandlerPanicked {
            event,
            message,
            completed,
        } = err
        else {
            panic!("expected HandlerPanicked, got {err:?}");
        };
        assert_eq!(event, "kaboom");
        assert_eq!(message, "handler exploded");
        assert_eq!(completed, vec![sym("fine")]);
    }

    #[test]
    fn panicking_handler_in_concurrent_fanout_does_not_hang() {
        // The old failure-drain loop at the bottom of the batch handler
        // had the same unbounded recv(): pin the concurrent shape too.
        let goal = conc(vec![
            Goal::atom("p1"),
            Goal::atom("p2"),
            Goal::atom("bad"),
            Goal::atom("p3"),
        ]);
        let p = program(&goal, &[]);
        let mut enactor = Enactor::new();
        enactor.register("bad", Box::new(|_| panic!("concurrent panic")));
        let err = run_guarded(enactor, p).unwrap_err();
        assert!(
            matches!(err, EnactError::HandlerPanicked { ref event, .. } if event == "bad"),
            "typed panic error from concurrent dispatch, got {err:?}"
        );
    }

    #[test]
    fn retries_recover_fail_then_succeed_faults() {
        let p = program(&seq(vec![Goal::atom("a"), Goal::atom("flaky")]), &[]);
        let enactor = Enactor::new()
            .with_faults(FaultPlan::new(1).fail("flaky", 2))
            .with_retry("flaky", RetryPolicy::attempts(3));
        let report = enactor.run_report(&p);
        assert!(report.is_success(), "error: {:?}", report.error);
        assert_eq!(report.completed, vec![sym("a"), sym("flaky")]);
        assert_eq!(report.attempts_for(sym("flaky")), 3);
        assert_eq!(report.total_retries(), 2);
        let outcomes: Vec<&AttemptOutcome> = report
            .attempts
            .iter()
            .filter(|a| a.event == sym("flaky"))
            .map(|a| &a.outcome)
            .collect();
        assert!(matches!(outcomes[0], AttemptOutcome::Failed(_)));
        assert!(matches!(outcomes[1], AttemptOutcome::Failed(_)));
        assert_eq!(outcomes[2], &AttemptOutcome::Success);
        assert!(report.compensation.is_empty(), "no compensation on success");
    }

    #[test]
    fn retries_recover_injected_panics() {
        let p = program(&seq(vec![Goal::atom("shaky")]), &[]);
        let enactor = Enactor::new()
            .with_faults(FaultPlan::new(2).panic_on("shaky", 1))
            .with_default_retry(RetryPolicy::attempts(2));
        let report = enactor.run_report(&p);
        assert!(report.is_success(), "error: {:?}", report.error);
        assert!(matches!(
            report.attempts[0].outcome,
            AttemptOutcome::Panicked(_)
        ));
        assert_eq!(report.attempts[1].outcome, AttemptOutcome::Success);
    }

    #[test]
    fn exhausted_retries_abort_with_the_last_reason() {
        let p = program(&seq(vec![Goal::atom("doomed")]), &[]);
        let enactor = Enactor::new()
            .with_faults(FaultPlan::new(3).fail("doomed", 99))
            .with_default_retry(
                RetryPolicy::attempts(3).with_backoff(Backoff::Fixed(Duration::from_millis(1))),
            );
        let report = enactor.run_report(&p);
        let Some(EnactError::HandlerFailed { event, .. }) = &report.error else {
            panic!("expected HandlerFailed, got {:?}", report.error);
        };
        assert_eq!(event, "doomed");
        assert_eq!(report.attempts_for(sym("doomed")), 3);
        assert!(report.completed.is_empty());
    }

    #[test]
    fn timeouts_are_detected_and_typed() {
        // The handler sleeps far longer than the budget; detached
        // workers mean the run returns as soon as the deadline passes.
        let p = program(&seq(vec![Goal::atom("quick"), Goal::atom("slow")]), &[]);
        let mut enactor = Enactor::new();
        enactor.register(
            "slow",
            Box::new(|_| {
                std::thread::sleep(Duration::from_secs(5));
                Ok(())
            }),
        );
        let enactor = enactor.with_retry(
            "slow",
            RetryPolicy::attempts(2).with_timeout(Duration::from_millis(40)),
        );
        let started = Instant::now();
        let report = enactor.run_report(&p);
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "run returned without waiting out the stuck handler"
        );
        let Some(EnactError::TimedOut { event, completed }) = &report.error else {
            panic!("expected TimedOut, got {:?}", report.error);
        };
        assert_eq!(event, "slow");
        assert_eq!(completed, &[sym("quick")]);
        assert_eq!(report.attempts_for(sym("slow")), 2);
        assert!(report
            .attempts
            .iter()
            .filter(|a| a.event == sym("slow"))
            .all(|a| a.outcome == AttemptOutcome::TimedOut));
    }

    #[test]
    fn vanished_workers_surface_as_worker_lost() {
        // The sentinel path: the worker ends without reporting; the
        // send-on-drop guard is the only signal. One retry, then the
        // typed WorkerLost abort the old code could never reach.
        let p = program(&seq(vec![Goal::atom("pre"), Goal::atom("ghost")]), &[]);
        let enactor = Enactor::new()
            .with_faults(FaultPlan::new(4).inject("ghost", Fault::Vanish(99)))
            .with_retry("ghost", RetryPolicy::attempts(2));
        let report = enactor.run_report(&p);
        let Some(EnactError::WorkerLost { completed }) = &report.error else {
            panic!("expected WorkerLost, got {:?}", report.error);
        };
        assert_eq!(completed, &[sym("pre")]);
        assert_eq!(report.attempts_for(sym("ghost")), 2);
        assert!(report
            .attempts
            .iter()
            .filter(|a| a.event == sym("ghost"))
            .all(|a| a.outcome == AttemptOutcome::Lost));
    }

    #[test]
    fn vanish_then_recover_is_retryable() {
        let p = program(&seq(vec![Goal::atom("blip")]), &[]);
        let enactor = Enactor::new()
            .with_faults(FaultPlan::new(5).inject("blip", Fault::Vanish(1)))
            .with_default_retry(RetryPolicy::attempts(2));
        let report = enactor.run_report(&p);
        assert!(report.is_success(), "error: {:?}", report.error);
        assert_eq!(report.attempts[0].outcome, AttemptOutcome::Lost);
        assert_eq!(report.attempts[1].outcome, AttemptOutcome::Success);
    }

    #[test]
    fn delay_faults_slow_but_do_not_fail() {
        let p = program(&conc(vec![Goal::atom("d1"), Goal::atom("d2")]), &[]);
        let enactor =
            Enactor::new().with_faults(FaultPlan::new(6).delay("d1", Duration::from_millis(10)));
        let report = enactor.run_report(&p);
        assert!(report.is_success());
        let d1 = report
            .attempts
            .iter()
            .find(|a| a.event == sym("d1"))
            .unwrap();
        assert!(d1.latency >= Duration::from_millis(10));
    }

    #[test]
    fn aborted_runs_emit_a_compensation_plan() {
        let p = program(
            &seq(vec![
                Goal::atom("book_flight"),
                Goal::atom("book_hotel"),
                Goal::atom("charge_card"),
            ]),
            &[],
        );
        let mut enactor = Enactor::new();
        enactor
            .compensate("book_flight", "cancel_flight")
            .compensate("book_hotel", "cancel_hotel");
        let enactor = enactor.with_faults(FaultPlan::new(7).fail("charge_card", 99));
        let report = enactor.run_report(&p);
        assert!(matches!(
            report.error,
            Some(EnactError::HandlerFailed { .. })
        ));
        assert_eq!(
            report.completed,
            vec![sym("book_flight"), sym("book_hotel")]
        );
        assert_eq!(
            report.compensation,
            vec![sym("cancel_hotel"), sym("cancel_flight")],
            "committed prefix compensated in reverse order"
        );
    }

    #[test]
    fn saga_steps_drive_the_compensation_plan() {
        let steps = vec![
            SagaStep::new(Goal::atom("reserve"), Goal::atom("release")),
            SagaStep::new(Goal::atom("charge"), Goal::atom("refund")),
        ];
        let p = program(
            &seq(vec![
                Goal::atom("reserve"),
                Goal::atom("charge"),
                Goal::atom("ship"),
            ]),
            &[],
        );
        let mut enactor = Enactor::new();
        enactor.with_saga(&steps);
        let enactor = enactor.with_faults(FaultPlan::new(8).fail("ship", 99));
        let report = enactor.run_report(&p);
        assert_eq!(report.compensation, vec![sym("refund"), sym("release")]);
    }

    #[test]
    fn deterministic_backoff_jitter_is_reproducible() {
        let policy = RetryPolicy::attempts(4)
            .with_backoff(Backoff::Exponential {
                base: Duration::from_millis(8),
                factor: 2,
                max: Duration::from_millis(100),
            })
            .with_jitter();
        let a: Vec<Duration> = (2..6).map(|n| policy.delay_before(n, 42)).collect();
        let b: Vec<Duration> = (2..6).map(|n| policy.delay_before(n, 42)).collect();
        assert_eq!(a, b, "same salt, same schedule");
        let c: Vec<Duration> = (2..6).map(|n| policy.delay_before(n, 43)).collect();
        assert_ne!(a, c, "different salt perturbs the jitter");
        for (n, d) in (2u32..6).zip(&a) {
            let base = Duration::from_millis(8 * 2u64.pow(n - 2)).min(Duration::from_millis(100));
            assert!(*d >= base && *d <= base + base / 2 + Duration::from_nanos(1));
        }
    }

    #[test]
    fn exponential_backoff_caps_at_max() {
        let policy = RetryPolicy::attempts(64).with_backoff(Backoff::Exponential {
            base: Duration::from_millis(1),
            factor: 10,
            max: Duration::from_millis(50),
        });
        assert_eq!(policy.delay_before(2, 0), Duration::from_millis(1));
        assert_eq!(policy.delay_before(3, 0), Duration::from_millis(10));
        assert_eq!(policy.delay_before(4, 0), Duration::from_millis(50));
        assert_eq!(policy.delay_before(60, 0), Duration::from_millis(50));
    }

    #[test]
    fn report_success_shape() {
        let p = program(&seq(vec![Goal::atom("one"), Goal::atom("two")]), &[]);
        let report = Enactor::new().run_report(&p);
        assert!(report.is_success());
        assert_eq!(report.completed, vec![sym("one"), sym("two")]);
        assert_eq!(report.attempts.len(), 2);
        assert!(report.attempts.iter().all(|a| a.attempt == 1));
        assert!(report.compensation.is_empty());
    }

    #[test]
    fn send_guard_reports_loss_on_drop() {
        let (tx, rx) = mpsc::channel();
        let guard = SendGuard {
            tx: Some(tx),
            ticket: 9,
        };
        drop(guard);
        let done = rx.recv_timeout(WATCHDOG).expect("sentinel message");
        assert_eq!(done.ticket, 9);
        assert!(matches!(done.verdict, Verdict::Lost));
    }

    #[test]
    fn send_guard_stays_silent_after_completing() {
        let (tx, rx) = mpsc::channel();
        let guard = SendGuard {
            tx: Some(tx),
            ticket: 3,
        };
        guard.complete(Verdict::Ok);
        let done = rx.recv_timeout(WATCHDOG).expect("completion message");
        assert!(matches!(done.verdict, Verdict::Ok));
        assert!(rx.try_recv().is_err(), "exactly one message per attempt");
    }
}
