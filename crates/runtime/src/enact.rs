//! Workflow enactment: actually *running* the activities.
//!
//! "An activity in a workflow might be performed by a human, a device, or
//! a program" (paper, §1). The scheduler decides *what may start*; the
//! [`Enactor`] is the dispatch loop that starts it — invoking a registered
//! handler per activity on a worker thread, firing the completion back
//! into the compiled schedule, and launching whatever becomes eligible
//! next. Independent activities (concurrent conjuncts) genuinely run in
//! parallel; `∨`-choices are resolved by a pluggable policy before
//! dispatch, because starting two mutually-exclusive activities would
//! waste (or worse, externally commit) real work.

use ctr::symbol::Symbol;
use ctr::term::Atom;
use ctr_engine::scheduler::{Program, Scheduler};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::mpsc;

/// An activity implementation. Receives the atom being executed; an `Err`
/// aborts the whole enactment (failure atomicity — compensation is
/// spec-level, see `ctr_workflow::compensation`).
pub type Handler = Box<dyn Fn(&Atom) -> Result<(), String> + Send + Sync>;

/// How the enactor resolves a branching decision when nothing
/// commitment-free is eligible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChoicePolicy {
    /// Deterministically take the first eligible step.
    #[default]
    First,
    /// Pseudo-randomly pick among eligible steps (seeded).
    Random(u64),
}

/// Errors from an enactment run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnactError {
    /// A handler returned an error; the run stops. The trace so far is
    /// attached.
    HandlerFailed {
        /// The failing activity.
        event: String,
        /// The handler's error.
        reason: String,
        /// Events completed before the failure.
        completed: Vec<Symbol>,
    },
    /// The schedule deadlocked (cannot happen for excised programs with
    /// the knot-free guarantee).
    Deadlock,
    /// A worker thread died without reporting a result (its handler
    /// panicked). The trace so far is attached.
    WorkerLost {
        /// Events completed before the worker vanished.
        completed: Vec<Symbol>,
    },
}

impl fmt::Display for EnactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnactError::HandlerFailed { event, reason, .. } => {
                write!(f, "activity `{event}` failed: {reason}")
            }
            EnactError::Deadlock => write!(f, "schedule deadlocked"),
            EnactError::WorkerLost { .. } => {
                write!(
                    f,
                    "a worker thread died without reporting (handler panicked)"
                )
            }
        }
    }
}

impl std::error::Error for EnactError {}

/// The activity dispatch loop.
#[derive(Default)]
pub struct Enactor {
    handlers: BTreeMap<Symbol, Handler>,
    policy: ChoicePolicy,
}

impl Enactor {
    /// An enactor with no handlers; unregistered activities complete
    /// instantly (pure significant events).
    pub fn new() -> Enactor {
        Enactor::default()
    }

    /// Registers the implementation of an activity.
    pub fn register(&mut self, event: impl Into<Symbol>, handler: Handler) -> &mut Self {
        self.handlers.insert(event.into(), handler);
        self
    }

    /// Sets the branching policy.
    pub fn with_policy(mut self, policy: ChoicePolicy) -> Enactor {
        self.policy = policy;
        self
    }

    /// Runs the program to completion, dispatching commitment-free
    /// eligible activities concurrently (scoped worker threads). Returns
    /// the executed path.
    pub fn run(&self, program: &Program) -> Result<Vec<Atom>, EnactError> {
        let mut scheduler = Scheduler::new(program);
        let mut rng_state = match self.policy {
            ChoicePolicy::Random(seed) => seed,
            ChoicePolicy::First => 0,
        };

        std::thread::scope(|scope| {
            let (done_tx, done_rx) = mpsc::channel::<(usize, Result<(), String>)>();
            // Node ids currently running on a worker.
            let mut running: BTreeSet<usize> = BTreeSet::new();
            // Completion batch buffer, reused across iterations.
            let mut completions: Vec<(usize, Result<(), String>)> = Vec::new();

            loop {
                // Dispatch every eligible, commitment-free, observable
                // step that is not already running.
                for choice in scheduler.eligible() {
                    if !choice.observable
                        || running.contains(&choice.node)
                        || !scheduler.is_commitment_free(choice.node)
                    {
                        continue;
                    }
                    let Some(atom) = program.event(choice.node) else {
                        continue;
                    };
                    running.insert(choice.node);
                    let tx = done_tx.clone();
                    let node = choice.node;
                    let handler = atom.as_event().and_then(|e| self.handlers.get(&e));
                    let atom = atom.clone();
                    scope.spawn(move || {
                        let outcome = match handler {
                            Some(h) => h(&atom),
                            None => Ok(()),
                        };
                        // The loop may have exited on another handler's
                        // failure; a closed channel is fine.
                        let _ = tx.send((node, outcome));
                    });
                }

                if running.is_empty() {
                    if scheduler.is_complete() {
                        return Ok(scheduler.trace().to_vec());
                    }
                    // Nothing runnable without committing: resolve a
                    // choice via the policy (silent steps included — a
                    // silent branch may be the only way to finish).
                    let eligible = scheduler.eligible();
                    if eligible.is_empty() {
                        return Err(EnactError::Deadlock);
                    }
                    let idx = match self.policy {
                        ChoicePolicy::First => 0,
                        ChoicePolicy::Random(_) => {
                            rng_state = rng_state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            (rng_state >> 33) as usize % eligible.len()
                        }
                    };
                    let pick = eligible[idx];
                    if pick.observable {
                        // Commit the branch, then dispatch it through the
                        // normal path on the next iteration: mark it
                        // running and execute its handler inline.
                        let atom = program.event(pick.node).cloned();
                        scheduler.fire(pick.node);
                        if let Some(atom) = atom {
                            if let Some(h) = atom.as_event().and_then(|e| self.handlers.get(&e)) {
                                // Inline execution happens after the fire:
                                // the decision is committed first, like a
                                // real dispatcher's "claim then work".
                                if let Err(reason) = h(&atom) {
                                    return Err(EnactError::HandlerFailed {
                                        event: atom.to_string(),
                                        reason,
                                        completed: scheduler.trace_names(),
                                    });
                                }
                            }
                        }
                    } else {
                        scheduler.fire(pick.node);
                    }
                    continue;
                }

                // Wait for one completion, then opportunistically drain
                // every completion already queued: a burst of finished
                // workers is fired as one batch under a single dispatch
                // pass instead of one loop round-trip per event. Safe
                // because every dispatched step was commitment-free, so
                // firing one cannot cancel another. A recv error means a
                // worker died without sending — its handler panicked past
                // the Result boundary.
                completions.clear();
                match done_rx.recv() {
                    Ok(done) => completions.push(done),
                    Err(_) => {
                        return Err(EnactError::WorkerLost {
                            completed: scheduler.trace_names(),
                        });
                    }
                }
                completions.extend(std::iter::from_fn(|| done_rx.try_recv().ok()));
                let mut batch = completions.drain(..);
                while let Some((node, outcome)) = batch.next() {
                    running.remove(&node);
                    match outcome {
                        Ok(()) => scheduler.fire(node),
                        Err(reason) => {
                            let event = program
                                .event(node)
                                .map(ToString::to_string)
                                .unwrap_or_default();
                            // Drain the rest of the batch and the
                            // remaining workers before unwinding the scope
                            // (their sends must not panic the join).
                            for (n, _) in batch {
                                running.remove(&n);
                            }
                            while !running.is_empty() {
                                if let Ok((n, _)) = done_rx.recv() {
                                    running.remove(&n);
                                }
                            }
                            return Err(EnactError::HandlerFailed {
                                event,
                                reason,
                                completed: scheduler.trace_names(),
                            });
                        }
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::constraints::Constraint;
    use ctr::goal::{conc, or, seq, Goal};
    use ctr::sym;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier, Mutex};

    fn program(goal: &Goal, constraints: &[Constraint]) -> Program {
        let compiled = ctr::analysis::compile(goal, constraints).unwrap();
        Program::compile(&compiled.goal).unwrap()
    }

    /// A handler that records its event in a shared log.
    fn recording(log: &Arc<Mutex<Vec<String>>>) -> Handler {
        let log = Arc::clone(log);
        Box::new(move |atom| {
            log.lock().unwrap().push(atom.to_string());
            Ok(())
        })
    }

    #[test]
    fn sequential_workflow_runs_in_order() {
        let p = program(
            &seq(vec![Goal::atom("a"), Goal::atom("b"), Goal::atom("c")]),
            &[],
        );
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut enactor = Enactor::new();
        for e in ["a", "b", "c"] {
            enactor.register(e, recording(&log));
        }
        let trace = enactor.run(&p).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(*log.lock().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn concurrent_activities_really_overlap() {
        // Two concurrent activities rendezvous at a barrier: the run can
        // only finish if both handlers execute simultaneously.
        let p = program(&conc(vec![Goal::atom("left"), Goal::atom("right")]), &[]);
        let barrier = Arc::new(Barrier::new(2));
        let mut enactor = Enactor::new();
        for e in ["left", "right"] {
            let b = Arc::clone(&barrier);
            enactor.register(
                e,
                Box::new(move |_| {
                    b.wait();
                    Ok(())
                }),
            );
        }
        let trace = enactor.run(&p).unwrap();
        assert_eq!(trace.len(), 2, "both sides passed the barrier concurrently");
    }

    #[test]
    fn compiled_order_constraints_serialize_dispatch() {
        // a | b with a<b compiled in: b's handler must observe a's completion.
        let p = program(
            &conc(vec![Goal::atom("a"), Goal::atom("b")]),
            &[Constraint::order("a", "b")],
        );
        let counter = Arc::new(AtomicUsize::new(0));
        let mut enactor = Enactor::new();
        {
            let c = Arc::clone(&counter);
            enactor.register(
                "a",
                Box::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
            );
        }
        {
            let c = Arc::clone(&counter);
            enactor.register(
                "b",
                Box::new(move |_| {
                    if c.load(Ordering::SeqCst) == 1 {
                        Ok(())
                    } else {
                        Err("started before a completed".to_owned())
                    }
                }),
            );
        }
        enactor.run(&p).expect("order constraint gates dispatch");
    }

    #[test]
    fn choices_are_resolved_before_dispatch() {
        // Only one branch's handler may ever run.
        let p = program(&or(vec![Goal::atom("x"), Goal::atom("y")]), &[]);
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut enactor = Enactor::new();
        enactor.register("x", recording(&log));
        enactor.register("y", recording(&log));
        enactor.run(&p).unwrap();
        assert_eq!(log.lock().unwrap().len(), 1, "exactly one branch executed");
    }

    #[test]
    fn random_policy_explores_branches() {
        let goal = or(vec![Goal::atom("x"), Goal::atom("y")]);
        let p = program(&goal, &[]);
        let mut seen = BTreeSet::new();
        for seed in 0..16 {
            let enactor = Enactor::new().with_policy(ChoicePolicy::Random(seed));
            let trace = enactor.run(&p).unwrap();
            seen.insert(trace[0].as_event().unwrap());
        }
        assert_eq!(seen.len(), 2, "both branches reachable under random policy");
    }

    #[test]
    fn handler_failure_aborts_with_context() {
        let p = program(
            &seq(vec![
                Goal::atom("ok"),
                Goal::atom("boom"),
                Goal::atom("never"),
            ]),
            &[],
        );
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut enactor = Enactor::new();
        enactor.register("ok", recording(&log));
        enactor.register("boom", Box::new(|_| Err("disk on fire".to_owned())));
        enactor.register("never", recording(&log));
        let err = enactor.run(&p).unwrap_err();
        let EnactError::HandlerFailed {
            event,
            reason,
            completed,
        } = err
        else {
            panic!("expected handler failure");
        };
        assert_eq!(event, "boom");
        assert_eq!(reason, "disk on fire");
        assert_eq!(completed, vec![sym("ok")]);
        assert_eq!(*log.lock().unwrap(), vec!["ok"], "`never` never ran");
    }

    #[test]
    fn unregistered_activities_complete_instantly() {
        let p = program(&seq(vec![Goal::atom("ghost1"), Goal::atom("ghost2")]), &[]);
        let trace = Enactor::new().run(&p).unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn wide_fanout_completes() {
        let goal = conc((0..12).map(|i| Goal::atom(format!("w{i}"))).collect());
        let p = program(&goal, &[]);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut enactor = Enactor::new();
        for i in 0..12 {
            let c = Arc::clone(&counter);
            enactor.register(
                format!("w{i}").as_str(),
                Box::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
            );
        }
        let trace = enactor.run(&p).unwrap();
        assert_eq!(trace.len(), 12);
        assert_eq!(counter.load(Ordering::SeqCst), 12);
    }
}
