//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository cannot reach crates.io, so
//! the workspace vendors a small, deterministic property-test runner that
//! is source-compatible with the subset of proptest the test-suite uses:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `name in strategy` binders,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * integer-range strategies, [`strategy::Just`], [`prop_oneof!`], string-pattern
//!   strategies, and [`collection::vec`].
//!
//! Differences from upstream: cases are generated from a fixed seed (so
//! runs are reproducible without a regressions file), failing inputs are
//! reported but not shrunk, and string "regex" strategies honour only the
//! `.{m,n}` repetition form (which is all the suite uses) — any other
//! pattern falls back to printable-ASCII noise of bounded length.

use std::fmt;

/// Failure or rejection raised inside a property body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case does not count.
    Reject(String),
    /// A `prop_assert*!` failed — the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (filtered case).
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// A failure (falsified property).
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod test_runner {
    use super::strategy::ValueSource;
    use super::TestCaseError;

    /// Runner configuration — `ProptestConfig` in the prelude.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
        /// Give up after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// Config with the given number of cases.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Deterministic case runner.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// A runner with the given config.
        pub fn new(config: Config) -> TestRunner {
            TestRunner { config }
        }

        /// Runs `body` until `config.cases` cases pass, a case fails, or
        /// the reject budget is exhausted. Each case's values come from a
        /// [`ValueSource`] seeded from the test name and case index, so
        /// runs are reproducible and cases are independent.
        pub fn run_test(
            &mut self,
            name: &str,
            mut body: impl FnMut(&mut ValueSource) -> Result<(), TestCaseError>,
        ) {
            let base = fnv1a(name.as_bytes());
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let mut case = 0u64;
            while passed < self.config.cases {
                let mut source = ValueSource::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                case += 1;
                match body(&mut source) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "property `{name}` exceeded {} rejected cases \
                                 (passed {passed}/{} before giving up)",
                                self.config.max_global_rejects, self.config.cases
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{name}` falsified at case #{case} \
                             (seed {base:#x}): {msg}"
                        );
                    }
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! Value generation. A [`Strategy`] turns raw bits from a
    //! [`ValueSource`] into a value; no shrinking is performed.

    /// Deterministic bit source for one test case (SplitMix64).
    pub struct ValueSource {
        state: u64,
    }

    impl ValueSource {
        /// Source seeded with `seed`.
        pub fn new(seed: u64) -> ValueSource {
            ValueSource {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, source: &mut ValueSource) -> Self::Value;

        /// Maps generated values through `map` — `strategy.prop_map(f)`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, map }
        }

        /// Type-erases the strategy so differently-shaped strategies can
        /// share one slot (the arms of `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, source: &mut ValueSource) -> T {
            (self.map)(self.inner.generate(source))
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, source: &mut ValueSource) -> T {
            (**self).generate(source)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, source: &mut ValueSource) -> Self::Value {
            (self.0.generate(source), self.1.generate(source))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, source: &mut ValueSource) -> Self::Value {
            (
                self.0.generate(source),
                self.1.generate(source),
                self.2.generate(source),
            )
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, source: &mut ValueSource) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = source.next_u64() as u128 % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, source: &mut ValueSource) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = source.next_u64() as u128 % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _source: &mut ValueSource) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among strategies of one value type — `prop_oneof!`
    /// (the macro boxes each arm, so the strategies themselves may be
    /// heterogeneous).
    pub struct OneOf<S> {
        options: Vec<S>,
    }

    impl<S> OneOf<S> {
        /// A choice among the given options (must be non-empty).
        pub fn new(options: Vec<S>) -> OneOf<S> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;
        fn generate(&self, source: &mut ValueSource) -> S::Value {
            let i = source.below(self.options.len() as u64) as usize;
            self.options[i].generate(source)
        }
    }

    /// `&str` patterns act as string strategies. Only the `.{m,n}` form is
    /// interpreted (arbitrary printable strings with length in `[m, n]`);
    /// anything else degrades to printable noise of length `0..=64`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, source: &mut ValueSource) -> String {
            let (min, max) = parse_dot_repeat(self).unwrap_or((0, 64));
            let len = min + source.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| {
                    // Mostly printable ASCII with a sprinkling of multibyte
                    // chars, so the lexer sees non-trivial unicode too.
                    match source.below(20) {
                        0 => '\u{3BB}',  // λ
                        1 => '\u{2297}', // ⊗
                        _ => (0x20 + source.below(0x5F) as u8) as char,
                    }
                })
                .collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (min, max) = rest.split_once(',')?;
        Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, ValueSource};

    /// Vec of values from `element`, with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            min: len.start,
            max: len.end.saturating_sub(1),
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, source: &mut ValueSource) -> Vec<S::Value> {
            let len = self.min + source.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(source)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the `proptest::prelude::*` import is expected to bring
    //! into scope.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        TestCaseError, TestCaseResult,
    };
}

/// Declares deterministic property tests. Source-compatible with
/// `proptest::proptest!` for `name in strategy` binders.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_test(stringify!($name), |__pt_source| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_source);
                    )+
                    let mut __pt_body = || -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __pt_body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type. Each
/// arm is boxed, so differently-shaped strategies (a range, a `Just`, a
/// `prop_map`) can mix freely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_vec_compose(
            items in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..10)
        ) {
            prop_assert!(items.len() < 10);
            prop_assert!(items.iter().all(|&i| i == 1 || i == 2));
        }

        #[test]
        fn string_pattern_bounds_length(s in ".{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }
    }
}
