//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the minimal, API-compatible subset of `rand`
//! it actually uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer ranges, [`Rng::gen_bool`], and the [`rngs::StdRng`] /
//! [`rngs::SmallRng`] types.
//!
//! The generator is SplitMix64 — a well-mixed 64-bit stream that is more
//! than adequate for workload generation and property tests. Streams are
//! deterministic per seed (the property the test-suite relies on), but
//! they are **not** bit-compatible with upstream `rand 0.8`; nothing in
//! this workspace depends on the exact stream values.

/// Types which can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Samples one value using the supplied 64-bit source.
    fn sample(self, source: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, source: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (source)() as u128 % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, source: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (source)() as u128 % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` used by this workspace.
pub trait Rng {
    /// Next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut source = || self.next_u64();
        range.sample(&mut source)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the same precision `rand` uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng` (SplitMix64 stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-mix once so consecutive small seeds diverge immediately.
            let mut state = seed ^ 0x5DEE_CE66_D9F4_A7C1;
            splitmix64(&mut state);
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` — same stream as [`StdRng`].
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let z = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
