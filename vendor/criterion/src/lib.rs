//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository cannot reach crates.io, so
//! the workspace vendors a minimal wall-clock benchmark harness that is
//! source-compatible with the subset of criterion the benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs a short calibration pass to
//! pick an iteration count that fits the group's measurement time, then
//! takes `sample_size` timed samples and reports the mean, min, and max
//! per-iteration wall time. There is no statistical analysis, HTML
//! report, or baseline comparison — output goes to stdout.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Benchmark context handed to the functions in [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        let mut group = BenchmarkGroup {
            name: String::new(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        };
        group.run_bench(id, f);
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget each benchmark's samples should roughly fit in.
    pub fn measurement_time(&mut self, t: Duration) -> &mut BenchmarkGroup {
        self.measurement_time = t;
        self
    }

    /// Records throughput so the report can show elements/second.
    pub fn throughput(&mut self, t: Throughput) -> &mut BenchmarkGroup {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut BenchmarkGroup {
        self.run_bench(&id.0, |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut BenchmarkGroup {
        self.run_bench(&id.into().0, f);
        self
    }

    /// Ends the group. (No-op; kept for source compatibility.)
    pub fn finish(self) {}

    fn run_bench(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        // Calibrate: find how many iterations fit a per-sample slice of
        // the measurement budget, starting from a single timed run.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);

        let full = if self.name.is_empty() {
            id.to_owned()
        } else {
            format!("{}/{id}", self.name)
        };
        print!(
            "{full:<48} mean {:>12}  [{} .. {}]",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max)
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            if mean > 0.0 {
                print!("  {:.0} elem/s", n as f64 * 1e9 / mean);
            }
        }
        println!();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id with a function label and a parameter value.
    pub fn new(label: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{label}/{parameter}"))
    }

    /// Id carrying just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_owned())
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value blocker re-exported for parity with upstream.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Declares a benchmark group: a function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` when invoked as `cargo bench`; under
            // `cargo test` the target is run as a smoke test, where doing
            // no measurement keeps the test suite fast.
            if !std::env::args().any(|a| a == "--bench") {
                return;
            }
            $( $group(); )+
        }
    };
}
